/**
 * @file
 * Behaviour tests of the core timing model through a small System:
 * accounting identities that must hold across schemes regardless of
 * workload (conservation between TLB levels, walk/POM bookkeeping,
 * blocking-translation cycle attribution).
 */

#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/system_builder.h"

using namespace csalt;

namespace
{

std::unique_ptr<System>
smallRun(void (*apply)(SystemParams &), std::uint64_t quota = 80'000)
{
    BuildSpec spec;
    apply(spec.params);
    spec.params.num_cores = 2;
    spec.params.cs_interval = 25'000;
    spec.vm_workloads = {"gups", "canneal"};
    spec.workload_scale = 0.02;
    auto system = buildSystem(spec);
    system->run(quota);
    return system;
}

} // namespace

TEST(CoreModel, TlbLevelConservation)
{
    auto system = smallRun(applyPomTlb);
    for (unsigned c = 0; c < system->numCores(); ++c) {
        const auto &tlbs = system->core(c).tlbs();
        // Every L1 miss probes the L2; every L2 access came from an
        // L1 miss.
        EXPECT_EQ(tlbs.l1Stats().misses, tlbs.l2().stats().accesses());
        // One L1 probe per memory reference.
        EXPECT_EQ(tlbs.l1Stats().accesses(),
                  system->core(c).stats().memrefs);
    }
}

TEST(CoreModel, PomLookupPerL2TlbMiss)
{
    auto system = smallRun(applyPomTlb);
    std::uint64_t l2_misses = 0;
    for (unsigned c = 0; c < system->numCores(); ++c)
        l2_misses += system->core(c).tlbs().l2().stats().misses;
    EXPECT_EQ(system->mem().pomLookupStats().lookups, l2_misses);
}

TEST(CoreModel, WalksEqualPomLookupMisses)
{
    auto system = smallRun(applyPomTlb);
    std::uint64_t walks = 0;
    for (unsigned c = 0; c < system->numCores(); ++c)
        walks += system->core(c).stats().walks;
    const auto &pom = system->mem().pomLookupStats();
    EXPECT_EQ(walks, pom.lookups - pom.hits);
}

TEST(CoreModel, WalkerStatsMatchCoreStats)
{
    auto system = smallRun(applyConventional);
    for (unsigned c = 0; c < system->numCores(); ++c) {
        EXPECT_EQ(system->core(c).walker().stats().walks,
                  system->core(c).stats().walks);
        EXPECT_EQ(system->core(c).walker().stats().cycles,
                  system->core(c).stats().walk_cycles);
    }
}

TEST(CoreModel, CyclesDecomposeSanely)
{
    auto system = smallRun(applyPomTlb);
    for (unsigned c = 0; c < system->numCores(); ++c) {
        const auto &core = system->core(c);
        const auto &stats = core.stats();
        // base + translation + data (+ switch penalties) = clock.
        const double base = 0.5 * stats.instructions;
        const double accounted =
            base + static_cast<double>(stats.translation_cycles) +
            static_cast<double>(stats.data_cycles) +
            2000.0 * stats.context_switches;
        // data_cycles truncates per record, so allow a few percent.
        EXPECT_NEAR(static_cast<double>(core.cyclesSinceClear()),
                    accounted, accounted * 0.05 + 10.0);
    }
}

TEST(CoreModel, MemrefsMatchDataAccesses)
{
    auto system = smallRun(applyPomTlb);
    // Every trace record issues exactly one L1D access.
    for (unsigned c = 0; c < system->numCores(); ++c) {
        EXPECT_EQ(system->mem().l1d(c).stats().accesses(),
                  system->core(c).stats().memrefs);
    }
}

TEST(CoreModel, TsbProbesPerMissAtMostTwo)
{
    auto system = smallRun(applyTsb);
    const auto &tsb = system->mem().tsb().stats();
    const std::uint64_t lookups = tsb.hits + tsb.misses;
    EXPECT_GE(tsb.probes, lookups);
    EXPECT_LE(tsb.probes, 2 * lookups);
}

TEST(CoreModel, InstructionsNeverExceedQuotaByOneRecord)
{
    auto system = smallRun(applyPomTlb, 50'000);
    for (unsigned c = 0; c < system->numCores(); ++c) {
        EXPECT_GE(system->core(c).instructions(), 50'000u);
        // A record retires at most ~16 instructions.
        EXPECT_LT(system->core(c).instructions(), 50'100u);
    }
}
