/**
 * @file
 * Tests for the POM-TLB (memory-resident L3 TLB) and the page-size
 * predictor.
 */

#include <gtest/gtest.h>

#include "tlb/pom_tlb.h"

using namespace csalt;

namespace
{

PomTlbParams
smallPom()
{
    PomTlbParams p;
    p.size_bytes = 64 * 1024; // 1024 sets
    p.ways = 4;
    p.entry_bytes = 16;
    return p;
}

constexpr Addr kBase = 0x40000000;

} // namespace

TEST(PomTlb, MissThenInsertThenHit)
{
    PomTlb pom(smallPom(), kBase);
    const Addr gva = 0x123456000;

    auto probe = pom.probe(1, gva, PageSize::size4K);
    EXPECT_FALSE(probe.hit);
    EXPECT_EQ(pom.stats().misses, 1u);

    pom.insert(1, gva, {0x777000, PageSize::size4K});
    probe = pom.probe(1, gva, PageSize::size4K);
    EXPECT_TRUE(probe.hit);
    EXPECT_EQ(probe.mapping.frame, 0x777000u);
    EXPECT_EQ(pom.stats().hits, 1u);
}

TEST(PomTlb, LineAddressesAreInRangeAndAligned)
{
    PomTlb pom(smallPom(), kBase);
    for (Addr gva = 0; gva < 200 * kPageSize; gva += kPageSize) {
        const Addr line = pom.lineAddrOf(1, gva, PageSize::size4K);
        EXPECT_GE(line, kBase);
        EXPECT_LT(line, kBase + 64 * 1024);
        EXPECT_EQ(line % kLineSize, 0u);
    }
}

TEST(PomTlb, ProbeLineMatchesInsertLine)
{
    PomTlb pom(smallPom(), kBase);
    const Addr gva = 0x5555000;
    const auto probe = pom.probe(1, gva, PageSize::size4K);
    EXPECT_EQ(probe.line_addr, pom.lineAddrOf(1, gva, PageSize::size4K));
}

TEST(PomTlb, AdjacentPagesAdjacentSets)
{
    // Row-buffer-friendly layout: consecutive VPNs land on
    // consecutive line-sets (POM-TLB paper's design point).
    PomTlb pom(smallPom(), kBase);
    const Addr l0 = pom.lineAddrOf(1, 0x1000 * 10, PageSize::size4K);
    const Addr l1 = pom.lineAddrOf(1, 0x1000 * 11, PageSize::size4K);
    EXPECT_EQ(l1 - l0, kLineSize);
}

TEST(PomTlb, AsidsMapToDifferentSets)
{
    PomTlb pom(smallPom(), kBase);
    EXPECT_NE(pom.lineAddrOf(1, 0x1000, PageSize::size4K),
              pom.lineAddrOf(2, 0x1000, PageSize::size4K));
}

TEST(PomTlb, SetLocalLruEviction)
{
    PomTlb pom(smallPom(), kBase);
    // Craft 5 (asid, vpn) pairs hitting the same set: same asid, vpn
    // stride = number of sets.
    const std::uint64_t sets = pom.numSets();
    for (std::uint64_t i = 0; i < 4; ++i)
        pom.insert(1, (i * sets) << kPageShift,
                   {i << kPageShift, PageSize::size4K});
    // Touch entry 0 so entry 1 is LRU.
    EXPECT_TRUE(pom.probe(1, 0, PageSize::size4K).hit);
    pom.insert(1, (4 * sets) << kPageShift,
               {0x99 << kPageShift, PageSize::size4K});
    EXPECT_EQ(pom.stats().set_evictions, 1u);
    EXPECT_TRUE(pom.probe(1, 0, PageSize::size4K).hit);
    EXPECT_FALSE(
        pom.probe(1, (1 * sets) << kPageShift, PageSize::size4K).hit);
}

TEST(PomTlb, InsertUpdatesInPlace)
{
    PomTlb pom(smallPom(), kBase);
    pom.insert(1, 0x4000, {0x111000, PageSize::size4K});
    pom.insert(1, 0x4000, {0x222000, PageSize::size4K});
    EXPECT_EQ(pom.probe(1, 0x4000, PageSize::size4K).mapping.frame,
              0x222000u);
    EXPECT_EQ(pom.stats().set_evictions, 0u);
}

TEST(PomTlb, TwoMegEntriesCoexist)
{
    PomTlb pom(smallPom(), kBase);
    pom.insert(1, 0x0, {0x111000, PageSize::size4K});
    pom.insert(1, 0x0, {Addr{4} << kHugePageShift, PageSize::size2M});
    EXPECT_TRUE(pom.probe(1, 0x0, PageSize::size4K).hit);
    EXPECT_TRUE(pom.probe(1, 0x100000, PageSize::size2M).hit);
}

// ---------------------------------------------------------- predictor

TEST(PageSizePredictor, DefaultsTo4K)
{
    PageSizePredictor pred;
    EXPECT_EQ(pred.predict(0x123456789000), PageSize::size4K);
}

TEST(PageSizePredictor, LearnsHugeRegions)
{
    PageSizePredictor pred;
    const Addr gva = Addr{77} << kHugePageShift;
    pred.update(gva, PageSize::size2M);
    pred.update(gva, PageSize::size2M);
    EXPECT_EQ(pred.predict(gva), PageSize::size2M);
    // Same 2MB region, different offset.
    EXPECT_EQ(pred.predict(gva + 0x12345), PageSize::size2M);
}

TEST(PageSizePredictor, UnlearnsOn4KEvidence)
{
    PageSizePredictor pred;
    const Addr gva = Addr{77} << kHugePageShift;
    for (int i = 0; i < 3; ++i)
        pred.update(gva, PageSize::size2M);
    for (int i = 0; i < 3; ++i)
        pred.update(gva, PageSize::size4K);
    EXPECT_EQ(pred.predict(gva), PageSize::size4K);
}

TEST(PageSizePredictor, TracksMispredicts)
{
    PageSizePredictor pred;
    pred.update(0x1000, PageSize::size2M); // predicted 4K: mispredict
    EXPECT_EQ(pred.mispredicts(), 1u);
    EXPECT_EQ(pred.predictions(), 1u);
}
