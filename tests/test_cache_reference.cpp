/**
 * @file
 * Differential test: the Cache model against an independent,
 * obviously-correct reference implementation (per-set vector with
 * explicit recency ordering), under randomized mixed data/translation
 * traffic and mid-stream repartitions. Any divergence in hit/miss
 * outcomes or resident sets is a bug in one of them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/cache.h"
#include "common/rng.h"

using namespace csalt;

namespace
{

/** Minimal reference cache: true LRU, way-range partitioning. */
class ReferenceCache
{
  public:
    ReferenceCache(std::uint64_t sets, unsigned ways)
        : ways_(ways), sets_(sets)
    {
    }

    void
    setDataWays(unsigned n)
    {
        data_ways_ = n;
    }

    bool
    access(Addr line, LineType type)
    {
        auto &set = sets_[line & (sets_.size() - 1)];

        // Hit anywhere in the set.
        for (auto &entry : set) {
            if (entry.valid && entry.line == line) {
                entry.stamp = ++clock_;
                return true;
            }
        }

        // Victim inside the type's way range (invalid-first).
        unsigned lo = 0;
        unsigned hi = ways_ - 1;
        if (data_ways_) {
            if (type == LineType::data) {
                hi = data_ways_ - 1;
            } else {
                lo = data_ways_;
            }
        }
        if (set.size() < ways_)
            set.resize(ways_);
        unsigned victim = lo;
        std::uint64_t oldest = ~std::uint64_t{0};
        for (unsigned w = lo; w <= hi; ++w) {
            if (!set[w].valid) {
                victim = w;
                oldest = 0;
                break;
            }
            if (set[w].stamp < oldest) {
                oldest = set[w].stamp;
                victim = w;
            }
        }
        set[victim] = {line, true, ++clock_};
        return false;
    }

    std::vector<Addr>
    residents() const
    {
        std::vector<Addr> out;
        for (const auto &set : sets_)
            for (const auto &entry : set)
                if (entry.valid)
                    out.push_back(entry.line);
        std::sort(out.begin(), out.end());
        return out;
    }

  private:
    struct Entry
    {
        Addr line = 0;
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    unsigned ways_;
    unsigned data_ways_ = 0; //!< 0 = unpartitioned
    std::uint64_t clock_ = 0;
    std::vector<std::vector<Entry>> sets_;
};

struct DiffCase
{
    unsigned ways;
    std::uint64_t sets;
    bool partitioned;
};

class CacheDifferential : public ::testing::TestWithParam<DiffCase>
{
};

} // namespace

TEST_P(CacheDifferential, MatchesReferenceModel)
{
    const auto param = GetParam();

    CacheParams cp;
    cp.name = "dut";
    cp.ways = param.ways;
    cp.size_bytes = param.sets * param.ways * kLineSize;
    Cache dut(cp);
    ReferenceCache ref(param.sets, param.ways);

    if (param.partitioned) {
        dut.enablePartitioning(param.ways / 2);
        ref.setDataWays(param.ways / 2);
    }

    Rng rng(2024);
    for (int i = 0; i < 60000; ++i) {
        // Occasional repartition mid-stream.
        if (param.partitioned && i % 7000 == 6999) {
            const unsigned n =
                1 + static_cast<unsigned>(rng.below(param.ways - 1));
            dut.setDataWays(n);
            ref.setDataWays(n);
        }

        const Addr line = rng.zipf(param.sets * param.ways * 4, 0.5);
        const LineType type = rng.chance(0.4)
                                  ? LineType::translation
                                  : LineType::data;
        const bool dut_hit =
            dut.access(line << kLineShift, AccessType::read, type).hit;
        const bool ref_hit = ref.access(line, type);
        ASSERT_EQ(dut_hit, ref_hit) << "diverged at access " << i;
    }

    // Final resident sets must agree exactly.
    std::vector<Addr> dut_lines;
    for (Addr line = 0; line < param.sets * param.ways * 4; ++line)
        if (dut.probe(line << kLineShift))
            dut_lines.push_back(line);
    EXPECT_EQ(dut_lines, ref.residents());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferential,
    ::testing::Values(DiffCase{4, 16, false}, DiffCase{4, 16, true},
                      DiffCase{8, 8, false}, DiffCase{8, 8, true},
                      DiffCase{16, 4, true}),
    [](const auto &info) {
        return std::to_string(info.param.ways) + "w" +
               std::to_string(info.param.sets) + "s" +
               (info.param.partitioned ? "_part" : "_flat");
    });
