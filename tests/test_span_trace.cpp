/**
 * @file
 * Tests for causal access-span tracing (obs/span_trace.h): the
 * sampling decision is a pure hash (identical sequentially and under
 * thread-parallel runs), a disarmed run is bit-exact against an
 * untraced one, recorded journey trees are well-formed (children
 * nested inside parents, root covering the whole access), ring
 * overflow drops oldest-and-counts instead of crashing, and the
 * sidecar round-trips through serialize/parse.
 */

#include <gtest/gtest.h>

#include <thread>

#include "obs/span_trace.h"
#include "sim/metrics.h"
#include "sim/metrics_io.h"
#include "sim/system_builder.h"

using namespace csalt;

namespace
{

BuildSpec
tinySpec()
{
    BuildSpec spec;
    applyCsaltCD(spec.params);
    spec.params.num_cores = 2;
    spec.params.cs_interval = 20'000;
    spec.params.seed = 5;
    spec.vm_workloads = {"canneal", "ccomp"};
    spec.workload_scale = 0.01;
    return spec;
}

obs::SpanTraceConfig
testConfig(std::uint64_t rate = 16)
{
    obs::SpanTraceConfig cfg;
    cfg.rate = rate;
    cfg.seed = 5;
    cfg.ring_capacity = 4096;
    return cfg;
}

/** Build, trace, run, and serialize one tiny system. */
std::string
tracedRunImage(const obs::SpanTraceConfig &cfg)
{
    auto system = buildSystem(tinySpec());
    system->enableSpanTrace(cfg);
    system->run(40'000);
    return system->spanTrace()->serialize("det");
}

} // namespace

TEST(SpanBuilder, NestingAndSuppression)
{
    obs::SpanBuilder b;
    // No journey in flight on this thread.
    EXPECT_EQ(obs::spanBuilder(), nullptr);

    const int root = b.open(obs::SpanKind::access, 100);
    const int child = b.open(obs::SpanKind::walk, 110);
    const int grand = b.open(obs::SpanKind::cache_l2, 112);
    b.close(grand, 120, obs::kSpanFlagTranslation);
    b.close(child, 130);
    // Sibling opened after the nest closed parents to the root.
    const int sib = b.open(obs::SpanKind::dram, 130);
    b.close(sib, 150, obs::kSpanFlagHit);
    b.close(root, 150);

    const auto &spans = b.spans();
    ASSERT_EQ(spans.size(), 4u);
    EXPECT_EQ(spans[0].parent, -1);
    EXPECT_EQ(spans[1].parent, 0);
    EXPECT_EQ(spans[2].parent, 1);
    EXPECT_EQ(spans[3].parent, 0);
    // A raw builder's origin is 0 (SpanRecorder::begin re-bases it
    // to the dispatch cycle), so starts are absolute here.
    EXPECT_EQ(spans[0].start, 100u);
    EXPECT_EQ(spans[0].dur, 50u);
    EXPECT_EQ(spans[2].flags, obs::kSpanFlagTranslation);
    EXPECT_EQ(spans[3].flags, obs::kSpanFlagHit);

    // Suppressed opens vanish; close(-1) is a no-op.
    b.pushSuppress();
    const int hidden = b.open(obs::SpanKind::cache_l3, 200);
    EXPECT_EQ(hidden, -1);
    b.close(hidden, 210);
    b.popSuppress();
    EXPECT_EQ(b.spans().size(), 4u);
}

TEST(SpanRecorder, SamplingIsAPureHash)
{
    const std::uint64_t epoch = 0;
    obs::SpanRecorder a(0, testConfig(64), &epoch);
    obs::SpanRecorder b(0, testConfig(64), &epoch);
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < 100'000; ++i) {
        EXPECT_EQ(a.shouldSample(i), b.shouldSample(i));
        hits += a.shouldSample(i);
    }
    // ~1/64 of accesses, with generous slack for hash variance.
    EXPECT_GT(hits, 100'000 / 64 / 2);
    EXPECT_LT(hits, 100'000 / 64 * 2);

    // rate<=1 samples everything; another core differs (decorrelated).
    obs::SpanRecorder every(0, testConfig(1), &epoch);
    EXPECT_TRUE(every.shouldSample(12345));
    obs::SpanRecorder other_core(1, testConfig(64), &epoch);
    bool any_diff = false;
    for (std::uint64_t i = 0; i < 10'000 && !any_diff; ++i)
        any_diff = a.shouldSample(i) != other_core.shouldSample(i);
    EXPECT_TRUE(any_diff);
}

TEST(SpanTrace, DeterministicAcrossParallelRuns)
{
    // The sampling hash and the journeys depend only on simulated
    // state, so a run on the main thread and runs racing on 8
    // threads (the --jobs N bench layout) serialize byte-identically.
    const std::string baseline = tracedRunImage(testConfig());

    std::vector<std::string> images(8);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < images.size(); ++t)
        threads.emplace_back([&images, t] {
            images[t] = tracedRunImage(testConfig());
        });
    for (auto &th : threads)
        th.join();
    for (const std::string &img : images)
        EXPECT_EQ(img, baseline);
}

TEST(SpanTrace, TracedRunIsBitExactAgainstUntraced)
{
    auto plain = buildSystem(tinySpec());
    plain->run(40'000);
    const RunMetrics base = collectMetrics(*plain);

    auto traced = buildSystem(tinySpec());
    traced->enableSpanTrace(testConfig());
    traced->run(40'000);
    const RunMetrics spans = collectMetrics(*traced);

    // Identical simulated behavior: the resume-journal encoding is
    // bit-exact and excludes the span_summary section by design.
    EXPECT_EQ(metricsJournalJson(base), metricsJournalJson(spans));
    EXPECT_FALSE(base.span_summary.has_value());
    ASSERT_TRUE(spans.span_summary.has_value());
    EXPECT_GT(spans.span_summary->sampled, 0u);

    // The section reaches the metrics JSON under its own key.
    const std::string json = metricsJson("traced", spans);
    EXPECT_NE(json.find("\"span_summary\""), std::string::npos);
    EXPECT_EQ(metricsJournalJson(spans).find("span_summary"),
              std::string::npos);
}

TEST(SpanTrace, JourneyTreesAreWellFormed)
{
    auto system = buildSystem(tinySpec());
    system->enableSpanTrace(testConfig());
    system->run(40'000);

    const obs::SpanTrace &trace = *system->spanTrace();
    std::uint64_t journeys = 0, with_children = 0;
    for (unsigned c = 0; c < trace.numCores(); ++c) {
        for (const obs::SpanJourney *j :
             trace.recorder(c).journeys()) {
            ++journeys;
            ASSERT_FALSE(j->spans.empty());
            const obs::Span &root = j->spans[0];
            EXPECT_EQ(root.parent, -1);
            EXPECT_EQ(root.kindOf(), obs::SpanKind::access);
            EXPECT_EQ(root.start, 0u);
            // Root duration IS the journey's causal latency, and
            // never shorter than the cycles charged to the core.
            EXPECT_EQ(root.dur, j->total);
            EXPECT_GE(j->total, j->charged);
            if (j->spans.size() > 1)
                ++with_children;
            for (std::size_t i = 1; i < j->spans.size(); ++i) {
                const obs::Span &s = j->spans[i];
                // Parents precede children (topological order)...
                ASSERT_GE(s.parent, 0);
                ASSERT_LT(static_cast<std::size_t>(s.parent), i);
                // ...and contain their intervals.
                const obs::Span &p =
                    j->spans[static_cast<std::size_t>(s.parent)];
                EXPECT_GE(s.start, p.start);
                EXPECT_LE(s.end(), p.end());
            }
            // Exclusive self-cycles re-sum to the inclusive total.
            const std::vector<std::uint64_t> self =
                obs::spanSelfCycles(*j);
            std::uint64_t sum = 0;
            for (std::uint64_t v : self)
                sum += v;
            EXPECT_EQ(sum, j->total);
        }
    }
    EXPECT_GT(journeys, 0u);
    EXPECT_GT(with_children, 0u);

    // The summary counted every journey (no ring pressure here).
    const obs::SpanSummary sum = trace.summary();
    EXPECT_EQ(sum.sampled, journeys);
    EXPECT_EQ(sum.dropped, 0u);
    std::uint64_t asid_journeys = 0;
    for (const auto &[asid, agg] : sum.per_asid)
        asid_journeys += agg.journeys;
    EXPECT_EQ(asid_journeys, journeys);
}

TEST(SpanTrace, RingOverflowDropsOldestAndCounts)
{
    obs::SpanTraceConfig cfg = testConfig(4);
    cfg.ring_capacity = 8;
    auto system = buildSystem(tinySpec());
    system->enableSpanTrace(cfg);
    system->run(40'000);

    const obs::SpanTrace &trace = *system->spanTrace();
    for (unsigned c = 0; c < trace.numCores(); ++c) {
        const obs::SpanRecorder &rec = trace.recorder(c);
        ASSERT_GT(rec.sampled(), 8u) << "run too short to overflow";
        EXPECT_EQ(rec.journeys().size(), 8u);
        EXPECT_EQ(rec.dropped(), rec.sampled() - 8);
        // Oldest-first order survives wraparound.
        const auto js = rec.journeys();
        for (std::size_t i = 1; i < js.size(); ++i)
            EXPECT_GT(js[i]->access_index, js[i - 1]->access_index);
    }
    // Drops reach the summary; sampled still counts every journey.
    const obs::SpanSummary sum = trace.summary();
    EXPECT_GT(sum.dropped, 0u);
    EXPECT_EQ(sum.sampled - sum.dropped, 16u); // 8 retained x 2 cores
}

TEST(SpanTrace, SidecarRoundTripsAndRejectsGarbage)
{
    auto system = buildSystem(tinySpec());
    system->enableSpanTrace(testConfig());
    system->run(40'000);

    const std::string image =
        system->spanTrace()->serialize("roundtrip:label");
    Expected<obs::SpanFile> parsed = obs::parseSpanFile(image);
    ASSERT_TRUE(parsed.ok()) << oneLine(parsed.error());
    const obs::SpanFile &file = parsed.value();
    EXPECT_EQ(file.num_cores, 2u);
    EXPECT_EQ(file.rate, 16u);
    EXPECT_EQ(file.seed, 5u);
    EXPECT_EQ(file.label, "roundtrip:label");

    const obs::SpanSummary sum = system->spanTrace()->summary();
    EXPECT_EQ(file.sampled, sum.sampled);
    EXPECT_EQ(file.journeys.size(), sum.sampled - sum.dropped);

    // Every parsed journey matches a live one field-for-field (spot
    // check the first of each core via access_index lookup).
    ASSERT_FALSE(file.journeys.empty());
    const obs::SpanJourney &j0 = file.journeys.front();
    const auto live = system->spanTrace()
                          ->recorder(j0.core)
                          .journeys();
    ASSERT_FALSE(live.empty());
    EXPECT_EQ(j0.access_index, live.front()->access_index);
    EXPECT_EQ(j0.vaddr, live.front()->vaddr);
    EXPECT_EQ(j0.total, live.front()->total);
    EXPECT_EQ(j0.spans.size(), live.front()->spans.size());

    // Truncation and bad magic fail with parse errors, not crashes.
    EXPECT_FALSE(obs::parseSpanFile(image.substr(0, 10)).ok());
    EXPECT_FALSE(
        obs::parseSpanFile(image.substr(0, image.size() - 3)).ok());
    std::string corrupt = image;
    corrupt[0] = 'X';
    EXPECT_FALSE(obs::parseSpanFile(corrupt).ok());
}

TEST(SpanTrace, ClearDiscardsWarmupJourneys)
{
    auto system = buildSystem(tinySpec());
    system->enableSpanTrace(testConfig());
    system->run(20'000);
    ASSERT_GT(system->spanTrace()->summary().sampled, 0u);

    // The warmup discard (System::clearAllStats) empties the rings
    // and the summary, so the sidecar covers only the measured run.
    system->clearAllStats();
    EXPECT_EQ(system->spanTrace()->summary().sampled, 0u);
    for (unsigned c = 0; c < system->spanTrace()->numCores(); ++c)
        EXPECT_TRUE(
            system->spanTrace()->recorder(c).journeys().empty());

    system->run(20'000);
    EXPECT_GT(system->spanTrace()->summary().sampled, 0u);
}
