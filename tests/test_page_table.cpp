/**
 * @file
 * Tests for the radix page table: map/walk round trips, 4KB vs 2MB
 * leaves, PTE address arithmetic, and node accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "vm/page_table.h"

using namespace csalt;

namespace
{

/** Node allocator handing out consecutive fake frame addresses. */
PageTable::NodeAlloc
bumpAlloc(Addr base = 0x100000)
{
    auto next = std::make_shared<Addr>(base);
    return [next] {
        const Addr a = *next;
        *next += kPageSize;
        return a;
    };
}

} // namespace

TEST(PageTable, RootAllocatedAtConstruction)
{
    PageTable pt(bumpAlloc(0x5000));
    EXPECT_EQ(pt.root(), 0x5000u);
    EXPECT_EQ(pt.nodeCount(), 1u);
}

TEST(PageTable, Map4KWalksFourLevels)
{
    PageTable pt(bumpAlloc());
    const Addr va = 0x7f1234566000;
    pt.map(va, 0xabc000, PageSize::size4K);

    std::vector<PteRef> path;
    pt.walkPath(va, path);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path[0].level, 4);
    EXPECT_EQ(path[3].level, 1);
    EXPECT_FALSE(path[0].leaf);
    EXPECT_TRUE(path[3].leaf);
    EXPECT_EQ(path[3].next, 0xabc000u);
    EXPECT_EQ(path[3].ps, PageSize::size4K);
}

TEST(PageTable, Map2MWalksThreeLevels)
{
    PageTable pt(bumpAlloc());
    const Addr va = Addr{5} << 21;
    pt.map(va, Addr{7} << 21, PageSize::size2M);

    std::vector<PteRef> path;
    pt.walkPath(va, path);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[2].level, 2);
    EXPECT_TRUE(path[2].leaf);
    EXPECT_EQ(path[2].ps, PageSize::size2M);
}

TEST(PageTable, PteAddressesFollowRadixIndices)
{
    PageTable pt(bumpAlloc(0x1000000));
    const Addr va = (Addr{3} << 39) | (Addr{5} << 30) |
                    (Addr{7} << 21) | (Addr{9} << 12);
    pt.map(va, 0xdead000, PageSize::size4K);

    std::vector<PteRef> path;
    pt.walkPath(va, path);
    EXPECT_EQ(path[0].pte_addr, pt.root() + 3 * kPteBytes);
    EXPECT_EQ(path[1].pte_addr, path[0].next + 5 * kPteBytes);
    EXPECT_EQ(path[2].pte_addr, path[1].next + 7 * kPteBytes);
    EXPECT_EQ(path[3].pte_addr, path[2].next + 9 * kPteBytes);
}

TEST(PageTable, LeafOfFindsMapping)
{
    PageTable pt(bumpAlloc());
    pt.map(0x4000, 0x9000, PageSize::size4K);
    const auto leaf = pt.leafOf(0x4000);
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(leaf->next, 0x9000u);
    EXPECT_FALSE(pt.leafOf(0x5000).has_value());
}

TEST(PageTable, SharedUpperLevelsReuseNodes)
{
    PageTable pt(bumpAlloc());
    pt.map(0x1000, 0xa000, PageSize::size4K);
    const auto count_after_first = pt.nodeCount();
    pt.map(0x2000, 0xb000, PageSize::size4K); // same leaf node
    EXPECT_EQ(pt.nodeCount(), count_after_first);

    pt.map(Addr{1} << 39, 0xc000, PageSize::size4K); // new subtree
    EXPECT_EQ(pt.nodeCount(), count_after_first + 3);
}

TEST(PageTable, NodeBytes)
{
    PageTable pt(bumpAlloc());
    pt.map(0x1000, 0xa000, PageSize::size4K);
    EXPECT_EQ(pt.nodeBytes(), pt.nodeCount() * kPageSize);
}

TEST(PageTable, RadixIndexHelper)
{
    const Addr va = (Addr{1} << 39) | (Addr{2} << 30) |
                    (Addr{3} << 21) | (Addr{4} << 12);
    EXPECT_EQ(radixIndex(va, 4), 1u);
    EXPECT_EQ(radixIndex(va, 3), 2u);
    EXPECT_EQ(radixIndex(va, 2), 3u);
    EXPECT_EQ(radixIndex(va, 1), 4u);
}

TEST(PageTable, FiveLevelWalksFiveLevels)
{
    PageTable pt(bumpAlloc(), kTopLevel5);
    EXPECT_EQ(pt.topLevel(), 5);
    // An address above the 48-bit boundary is reachable with LA57.
    const Addr va = (Addr{37} << 48) | 0x123456789000;
    pt.map(va, 0xabc000, PageSize::size4K);

    std::vector<PteRef> path;
    pt.walkPath(va, path);
    ASSERT_EQ(path.size(), 5u);
    EXPECT_EQ(path[0].level, 5);
    EXPECT_EQ(path[4].level, 1);
    EXPECT_TRUE(path[4].leaf);
}

TEST(PageTable, FiveLevelSeparatesHighRegions)
{
    PageTable pt(bumpAlloc(), kTopLevel5);
    pt.map(Addr{1} << 48, 0xa000, PageSize::size4K);
    pt.map(Addr{2} << 48, 0xb000, PageSize::size4K);
    EXPECT_EQ(pt.leafOf(Addr{1} << 48)->next, 0xa000u);
    EXPECT_EQ(pt.leafOf(Addr{2} << 48)->next, 0xb000u);
}

TEST(PageTable, UnsupportedDepthPanics)
{
    EXPECT_DEATH(PageTable(bumpAlloc(), 3), "paging depth");
}

TEST(PageTable, DoubleMapPanics)
{
    PageTable pt(bumpAlloc());
    pt.map(0x1000, 0xa000, PageSize::size4K);
    EXPECT_DEATH(pt.map(0x1000, 0xb000, PageSize::size4K),
                 "already mapped");
}

TEST(PageTable, UnalignedMapPanics)
{
    PageTable pt(bumpAlloc());
    EXPECT_DEATH(pt.map(0x1008, 0xa000, PageSize::size4K),
                 "unaligned");
    EXPECT_DEATH(pt.map(Addr{1} << 21, 0x1000, PageSize::size2M),
                 "unaligned");
}

TEST(PageTable, WalkOfUnmappedPanics)
{
    PageTable pt(bumpAlloc());
    std::vector<PteRef> path;
    EXPECT_DEATH(pt.walkPath(0x1000, path), "unmapped");
}
