/**
 * @file
 * Tests for the assembled memory hierarchy: demand paths, latency
 * ordering, writeback absorption, POM/TSB plumbing, and the
 * data/translation classification boundary.
 */

#include <gtest/gtest.h>

#include "sim/memory_system.h"

using namespace csalt;

namespace
{

SystemParams
smallSystem()
{
    SystemParams p = defaultParams();
    p.num_cores = 2;
    return p;
}

} // namespace

TEST(MemorySystem, LatencyOrderingAlongTheDataPath)
{
    MemorySystem mem(smallSystem());
    const Addr a = 0x100000;

    const Cycles cold = mem.dataAccess(0, a, AccessType::read, 0);
    const Cycles l1_hit = mem.dataAccess(0, a, AccessType::read, 0);
    EXPECT_LT(l1_hit, cold);
    EXPECT_EQ(l1_hit, mem.l1d(0).latency());

    // A second core misses L1/L2 but hits the shared L3.
    const Cycles l3_hit = mem.dataAccess(1, a, AccessType::read, 0);
    EXPECT_GT(l3_hit, l1_hit);
    EXPECT_LT(l3_hit, cold);
    EXPECT_EQ(l3_hit, mem.l1d(1).latency() + mem.l2(1).latency() +
                          mem.l3().latency());
}

TEST(MemorySystem, FillsAllLevels)
{
    MemorySystem mem(smallSystem());
    const Addr a = 0x200000;
    mem.dataAccess(0, a, AccessType::read, 0);
    EXPECT_TRUE(mem.l1d(0).probe(a));
    EXPECT_TRUE(mem.l2(0).probe(a));
    EXPECT_TRUE(mem.l3().probe(a));
    EXPECT_FALSE(mem.l1d(1).probe(a));
}

TEST(MemorySystem, TranslationPathSkipsL1)
{
    MemorySystem mem(smallSystem());
    const Addr pom_line = mem.map().pomBase();
    mem.translationAccess(0, pom_line, 0);
    EXPECT_FALSE(mem.l1d(0).probe(pom_line));
    EXPECT_TRUE(mem.l2(0).probe(pom_line));
    EXPECT_TRUE(mem.l3().probe(pom_line));

    const Cycles warm = mem.translationAccess(0, pom_line, 0);
    EXPECT_EQ(warm, mem.l2(0).latency());
}

TEST(MemorySystem, TranslationAccessToDataRangePanics)
{
    MemorySystem mem(smallSystem());
    EXPECT_DEATH(mem.translationAccess(0, 0x1000, 0), "data address");
}

TEST(MemorySystem, PomLinesGoToStackedDram)
{
    MemorySystem mem(smallSystem());
    mem.translationAccess(0, mem.map().pomBase() + 4096, 0);
    EXPECT_EQ(mem.stacked().stats().accesses, 1u);
    EXPECT_EQ(mem.ddr().stats().accesses, 0u);

    mem.dataAccess(0, 0x5000, AccessType::read, 0);
    EXPECT_EQ(mem.ddr().stats().accesses, 1u);
}

TEST(MemorySystem, DirtyL3VictimWritesBackToDram)
{
    SystemParams p = smallSystem();
    MemorySystem mem(p);
    // Write a line, then stream enough conflicting lines through the
    // same L3 set to evict it.
    const std::uint64_t l3_sets = mem.l3().numSets();
    const Addr victim = 0x40 << kLineShift;
    mem.dataAccess(0, victim, AccessType::write, 0);

    const auto before = mem.ddr().stats().accesses;
    for (std::uint64_t i = 1; i <= 64; ++i) {
        const Addr a = victim + i * (l3_sets << kLineShift);
        mem.dataAccess(0, a, AccessType::read, 0);
    }
    EXPECT_FALSE(mem.l3().probe(victim));
    // The eviction chain must have produced at least one extra DRAM
    // write beyond the demand fills.
    EXPECT_GT(mem.ddr().stats().accesses, before + 64);
}

TEST(MemorySystem, PomLookupMissThenInsertThenHit)
{
    MemorySystem mem(smallSystem());
    PageSizePredictor pred;

    auto res = mem.pomLookup(0, 1, 0x123456000, pred, 0);
    EXPECT_FALSE(res.hit);
    EXPECT_GT(res.latency, 0u);

    mem.pomInsert(1, 0x123456000, {0x777000, PageSize::size4K});
    res = mem.pomLookup(0, 1, 0x123456000, pred, 0);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.mapping.frame, 0x777000u);
    EXPECT_EQ(mem.pomLookupStats().lookups, 2u);
    EXPECT_EQ(mem.pomLookupStats().hits, 1u);
}

TEST(MemorySystem, PomLookupMissProbesBothSizes)
{
    MemorySystem mem(smallSystem());
    PageSizePredictor pred;
    mem.pomLookup(0, 1, 0x42000, pred, 0);
    EXPECT_EQ(mem.pomLookupStats().second_probes, 1u);
    // Both probed set lines are now cached in L2.
    EXPECT_GE(mem.l2(0).stats().missesOf(LineType::translation), 2u);
}

TEST(MemorySystem, MispredictedSizeStillHits)
{
    MemorySystem mem(smallSystem());
    PageSizePredictor pred;
    // Train the predictor to 2M for this region, then look up a 4K
    // translation there: first probe misses, second finds it.
    pred.update(0x800000, PageSize::size2M);
    pred.update(0x800000, PageSize::size2M);
    mem.pomInsert(1, 0x800000, {0x999000, PageSize::size4K});
    const auto res = mem.pomLookup(0, 1, 0x800000, pred, 0);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.mapping.ps, PageSize::size4K);
    EXPECT_EQ(mem.pomLookupStats().second_probes, 1u);
}

TEST(MemorySystem, OccupancySampling)
{
    MemorySystem mem(smallSystem());
    mem.dataAccess(0, 0x1000, AccessType::read, 0);
    mem.translationAccess(0, mem.map().pomBase(), 0);
    mem.sampleOccupancy(1.0);
    EXPECT_FALSE(mem.l3Occupancy().series().empty());
    EXPECT_GT(mem.l3Occupancy().meanTranslationFraction(), 0.0);
}

TEST(MemorySystem, ClearAllStats)
{
    MemorySystem mem(smallSystem());
    PageSizePredictor pred;
    mem.dataAccess(0, 0x1000, AccessType::read, 0);
    mem.pomLookup(0, 1, 0x2000, pred, 0);
    mem.sampleOccupancy(1.0);

    mem.clearAllStats();
    EXPECT_EQ(mem.l1d(0).stats().accesses(), 0u);
    EXPECT_EQ(mem.l3().stats().accesses(), 0u);
    EXPECT_EQ(mem.ddr().stats().accesses, 0u);
    EXPECT_EQ(mem.pomLookupStats().lookups, 0u);
    EXPECT_TRUE(mem.l3Occupancy().series().empty());
    // State (not stats) is preserved: the line is still cached.
    EXPECT_TRUE(mem.l1d(0).probe(0x1000));
}

TEST(MemorySystem, CriticalityEstimatorsAreFed)
{
    MemorySystem mem(smallSystem());
    // A DRAM-bound data access must raise the data weight.
    mem.dataAccess(0, 0x9000, AccessType::read, 0);
    EXPECT_GT(mem.l3Criticality().weights().s_dat, 1.0);

    // A POM-line DRAM access must raise the translation weight.
    PageSizePredictor pred;
    mem.pomLookup(0, 1, 0x42000, pred, 0);
    EXPECT_GT(mem.l3Criticality().weights().s_tr, 1.0);
}

TEST(MemorySystem, TsbLookupPath)
{
    SystemParams p = smallSystem();
    p.translation = TranslationKind::tsb;
    MemorySystem mem(p);

    VmContext::Params vp;
    vp.asid = 1;
    vp.virtualized = true;
    vp.seed = 3;
    VmContext vm(vp, mem.dataFrames(), mem.ptFrames());

    auto res = mem.tsbLookup(0, vm, 0x4000, 0);
    EXPECT_FALSE(res.hit);
    mem.tsbInsert(vm, 0x4000, vm.mappingOf(0x4000));
    res = mem.tsbLookup(0, vm, 0x4000, 0);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.mapping.frame, vm.mappingOf(0x4000).frame);
}
