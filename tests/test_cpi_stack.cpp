/**
 * @file
 * CPI-stack accounting: LatencyBreakdown unit behaviour (addScaled
 * exactness, component naming, walk-component mapping) and the
 * end-to-end invariants on a deterministic two-context workload —
 * per-core stacks sum to the core's elapsed cycles, per-context
 * stacks sum to the per-core stack, and the walk histograms agree
 * with the page walker's reference counters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "obs/cpi_stack.h"
#include "sim/metrics.h"
#include "sim/system_builder.h"

using namespace csalt;
using obs::CpiComponent;
using obs::LatencyBreakdown;

namespace
{

BuildSpec
twoContextSpec(void (*apply)(SystemParams &))
{
    BuildSpec spec;
    apply(spec.params);
    spec.params.num_cores = 2;
    spec.params.cs_interval = 20'000;
    spec.params.seed = 7;
    spec.vm_workloads = {"gups", "pagerank"};
    spec.workload_scale = 0.01;
    return spec;
}

constexpr std::uint64_t kWarmup = 20'000;
constexpr std::uint64_t kQuota = 60'000;

} // namespace

// ------------------------------------------------------------- units

TEST(CpiStack, ComponentNamesAreUniqueAndStable)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < obs::kNumCpiComponents; ++i) {
        const char *name =
            obs::cpiComponentName(static_cast<CpiComponent>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate name " << name;
    }
    EXPECT_STREQ(obs::cpiComponentName(CpiComponent::compute),
                 "compute");
    EXPECT_STREQ(obs::cpiComponentName(CpiComponent::csSwitch),
                 "cs_switch");
    EXPECT_STREQ(obs::cpiComponentName(CpiComponent::walkGuestL4),
                 "walk_guest_l4");
    EXPECT_STREQ(obs::cpiComponentName(CpiComponent::walkHostL1),
                 "walk_host_l1");
}

TEST(CpiStack, WalkComponentMapsLevelAndDimension)
{
    EXPECT_EQ(obs::walkComponent(false, 1), CpiComponent::walkGuestL1);
    EXPECT_EQ(obs::walkComponent(false, 4), CpiComponent::walkGuestL4);
    EXPECT_EQ(obs::walkComponent(false, 5), CpiComponent::walkGuestL5);
    EXPECT_EQ(obs::walkComponent(true, 1), CpiComponent::walkHostL1);
    EXPECT_EQ(obs::walkComponent(true, 5), CpiComponent::walkHostL5);
    // Out-of-range levels clamp instead of indexing out of bounds.
    EXPECT_EQ(obs::walkComponent(false, 0), CpiComponent::walkGuestL1);
    EXPECT_EQ(obs::walkComponent(true, 9), CpiComponent::walkHostL5);
}

TEST(CpiStack, AddAccumulatesAndTotals)
{
    LatencyBreakdown bd;
    EXPECT_DOUBLE_EQ(bd.total(), 0.0);
    bd.add(CpiComponent::compute, 10.0);
    bd.add(CpiComponent::dataDram, 200.0);
    bd.add(CpiComponent::walkMmu, 2.0);
    bd.add(CpiComponent::walkGuestL2, 30.0);
    bd.add(CpiComponent::walkHostL1, 40.0);
    EXPECT_DOUBLE_EQ(bd.of(CpiComponent::compute), 10.0);
    EXPECT_DOUBLE_EQ(bd.total(), 282.0);
    EXPECT_DOUBLE_EQ(bd.walkTotal(), 72.0);

    LatencyBreakdown other;
    other.add(CpiComponent::compute, 1.0);
    other.add(CpiComponent::tlbProbe, 5.0);
    bd += other;
    EXPECT_DOUBLE_EQ(bd.of(CpiComponent::compute), 11.0);
    EXPECT_DOUBLE_EQ(bd.of(CpiComponent::tlbProbe), 5.0);
    EXPECT_DOUBLE_EQ(bd.total(), 288.0);

    bd.clear();
    EXPECT_DOUBLE_EQ(bd.total(), 0.0);
}

TEST(CpiStack, AddScaledSumsExactlyToTarget)
{
    // The remainder trick must make the added amounts sum to the
    // target bit-exactly, even for awkward ratios.
    for (double target : {1.0, 3.7, 101.25, 55.0 / 7.0}) {
        LatencyBreakdown src;
        src.add(CpiComponent::dataL1d, 4.0);
        src.add(CpiComponent::dataL2, 12.0);
        src.add(CpiComponent::dataL3, 33.0);
        src.add(CpiComponent::dataDram, 271.0);

        LatencyBreakdown dst;
        dst.addScaled(src, target);
        EXPECT_DOUBLE_EQ(dst.total(), target) << "target " << target;
        // Shares keep the source's proportions (up to the remainder
        // absorbed by the last nonzero component).
        EXPECT_NEAR(dst.of(CpiComponent::dataL1d),
                    target * 4.0 / 320.0, 1e-12);
        EXPECT_NEAR(dst.of(CpiComponent::dataDram),
                    target * 271.0 / 320.0, 1e-9);
    }
}

TEST(CpiStack, AddScaledIgnoresDegenerateInputs)
{
    LatencyBreakdown empty_src, dst;
    dst.add(CpiComponent::compute, 5.0);
    dst.addScaled(empty_src, 100.0); // empty source: no-op
    EXPECT_DOUBLE_EQ(dst.total(), 5.0);

    LatencyBreakdown src;
    src.add(CpiComponent::dataL1d, 4.0);
    dst.addScaled(src, 0.0); // zero target: no-op
    EXPECT_DOUBLE_EQ(dst.total(), 5.0);
}

TEST(CpiStack, AddScaledAccumulatesOnTopOfExisting)
{
    LatencyBreakdown src;
    src.add(CpiComponent::dataL1d, 1.0);
    src.add(CpiComponent::dataDram, 3.0);

    LatencyBreakdown dst;
    dst.add(CpiComponent::dataL1d, 10.0);
    dst.addScaled(src, 8.0);
    EXPECT_DOUBLE_EQ(dst.total(), 18.0);
    EXPECT_DOUBLE_EQ(dst.of(CpiComponent::dataL1d), 12.0);
    EXPECT_DOUBLE_EQ(dst.of(CpiComponent::dataDram), 6.0);
}

// ------------------------------------------------- system invariants

namespace
{

/** Run warmup + measured slice and return the system. */
std::unique_ptr<System>
runTwoContext(void (*apply)(SystemParams &))
{
    auto system = buildSystem(twoContextSpec(apply));
    system->run(kWarmup);
    system->clearAllStats();
    system->run(kQuota);
    return system;
}

} // namespace

TEST(CpiStackIntegration, ComponentsSumToCoreCycles)
{
    // The headline invariant: every cycle the core charged since the
    // stats clear is in exactly one component. Integer translation
    // latencies sum exactly; the MLP-scaled data path is folded in
    // with the remainder trick, so only accumulation-order rounding
    // (~ulp of the total) separates stack from clock.
    for (auto apply : {applyConventional, applyPomTlb, applyCsaltD,
                       applyTsb}) {
        auto system = runTwoContext(apply);
        for (unsigned c = 0; c < system->numCores(); ++c) {
            const CoreModel &core = system->core(c);
            EXPECT_NEAR(core.cpiStack().total(),
                        core.cyclesSinceClearExact(), 0.5);
            EXPECT_GT(core.cpiStack().of(CpiComponent::compute), 0.0);
        }
    }
}

TEST(CpiStackIntegration, ContextStacksSumToCoreStack)
{
    auto system = runTwoContext(applyCsaltD);
    for (unsigned c = 0; c < system->numCores(); ++c) {
        const CoreModel &core = system->core(c);
        ASSERT_EQ(core.contextCpiStacks().size(), 2u);
        LatencyBreakdown sum;
        for (const auto &ctx : core.contextCpiStacks())
            sum += ctx;
        for (std::size_t i = 0; i < obs::kNumCpiComponents; ++i) {
            const auto comp = static_cast<CpiComponent>(i);
            EXPECT_NEAR(sum.of(comp), core.cpiStack().of(comp),
                        1e-6 * (1.0 + core.cpiStack().of(comp)))
                << obs::cpiComponentName(comp);
        }
        // Both rotation slots actually ran (context switches fired).
        EXPECT_GT(core.contextCpiStacks()[0].total(), 0.0);
        EXPECT_GT(core.contextCpiStacks()[1].total(), 0.0);
        EXPECT_GT(core.cpiStack().of(CpiComponent::csSwitch), 0.0);
    }
}

TEST(CpiStackIntegration, WalkHistogramsMatchWalkerCounters)
{
    auto system = runTwoContext(applyConventional);
    std::uint64_t total_walks = 0;
    for (unsigned c = 0; c < system->numCores(); ++c) {
        const PageWalker &w = system->core(c).walker();
        EXPECT_EQ(w.walkHist().count(), w.stats().walks);
        EXPECT_EQ(w.refHist().count(), w.stats().refs);
        EXPECT_EQ(static_cast<std::uint64_t>(w.walkHist().sum()),
                  w.stats().cycles);
        EXPECT_GT(w.stats().walks, 0u);
        total_walks += w.stats().walks;
    }
    // The system-wide walk.lat histogram is fed once per recordWalk.
    EXPECT_EQ(system->mem().walkLatHist().count(), total_walks);
}

TEST(CpiStackIntegration, WalkCyclesMatchStackWalkTotal)
{
    // On the translation-blocking path, the walker's stamped walk
    // components must equal the walk cycles the core counted.
    auto system = runTwoContext(applyConventional);
    for (unsigned c = 0; c < system->numCores(); ++c) {
        const CoreModel &core = system->core(c);
        EXPECT_NEAR(core.cpiStack().walkTotal(),
                    static_cast<double>(core.stats().walk_cycles),
                    0.5);
    }
}

TEST(CpiStackIntegration, RegistryExposesCpiGaugesAndHistograms)
{
    auto system = buildSystem(twoContextSpec(applyCsaltD));
    system->finalizeStats();
    const auto &reg = system->statRegistry();
    for (const char *name :
         {"core0.cpi.compute", "core0.cpi.cs_switch",
          "core0.cpi.data_dram", "core0.cpi.walk_guest_l1",
          "core1.cpi.pom_access", "core0.walk.lat",
          "core0.walk.ref_lat", "core0.mem.data_lat", "walk.lat",
          "pom.lookup.lat", "dram.ddr.lat", "dram.stacked.lat"}) {
        EXPECT_TRUE(reg.has(name)) << name;
    }

    system->run(kQuota);
    double gauge_total = 0.0;
    for (std::size_t i = 0; i < obs::kNumCpiComponents; ++i) {
        const auto comp = static_cast<CpiComponent>(i);
        gauge_total += reg.valueOf(
            std::string("core0.cpi.") + obs::cpiComponentName(comp));
    }
    EXPECT_NEAR(gauge_total, system->core(0).cpiStack().total(), 1e-9);
    EXPECT_GT(reg.histogramOf("walk.lat").count(), 0u);
}

TEST(CpiStackIntegration, SamplerEmitsHistogramDigests)
{
    auto system = buildSystem(twoContextSpec(applyPomTlb));
    std::ostringstream sink;
    system->setStatSampleInterval(4096);
    system->setTraceSink(&sink);
    system->run(30'000);
    system->closeTrace();

    const std::string out = sink.str();
    EXPECT_NE(out.find("\"hists\":{"), std::string::npos);
    EXPECT_NE(out.find("\"walk.lat\":{\"count\":"), std::string::npos);
    EXPECT_NE(out.find("\"p999\":"), std::string::npos);
    EXPECT_NE(out.find("core0.cpi.compute"), std::string::npos);
}

TEST(CpiStackIntegration, MetricsAggregateStacksAndHistograms)
{
    auto system = runTwoContext(applyCsaltD);
    const RunMetrics m = collectMetrics(*system);

    ASSERT_EQ(m.core_cpi.size(), 2u);
    ASSERT_EQ(m.vm_cpi.size(), 2u);
    EXPECT_NEAR(m.cpi_total.total(), m.total_cycles, 1.0);

    LatencyBreakdown vm_sum;
    for (const auto &vm : m.vm_cpi)
        vm_sum += vm;
    EXPECT_NEAR(vm_sum.total(), m.cpi_total.total(), 1e-6);

    bool has_walk_lat = false;
    for (const auto &h : m.histograms) {
        EXPECT_GT(h.digest.count, 0u) << h.name;
        has_walk_lat = has_walk_lat || h.name == "walk.lat";
    }
    EXPECT_TRUE(has_walk_lat);
}

TEST(CpiStackIntegration, CsaltDShrinksWalkShareVsConventional)
{
    // The paper's core claim, visible straight from the CPI stack:
    // CSALT-D spends fewer cycles walking than conventional
    // translation on the same workload mix.
    auto conventional = runTwoContext(applyConventional);
    auto csalt = runTwoContext(applyCsaltD);
    double conv_walk = 0.0, conv_total = 0.0;
    double csalt_walk = 0.0, csalt_total = 0.0;
    for (unsigned c = 0; c < 2; ++c) {
        conv_walk += conventional->core(c).cpiStack().walkTotal();
        conv_total += conventional->core(c).cpiStack().total();
        csalt_walk += csalt->core(c).cpiStack().walkTotal();
        csalt_total += csalt->core(c).cpiStack().total();
    }
    EXPECT_GT(conv_walk, 0.0);
    EXPECT_LT(csalt_walk / csalt_total, conv_walk / conv_total);
}
