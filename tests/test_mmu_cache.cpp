/**
 * @file
 * Tests for the MMU paging-structure caches and the nested cache.
 */

#include <gtest/gtest.h>

#include "vm/mmu_cache.h"
#include "vm/page_table.h"

using namespace csalt;

TEST(SmallLruCache, HitPromotesMissReturnsEmpty)
{
    SmallLruCache cache(2);
    EXPECT_FALSE(cache.lookup(1).has_value());
    cache.insert(1, 100);
    EXPECT_EQ(cache.lookup(1).value(), 100u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SmallLruCache, EvictsLeastRecentlyUsed)
{
    SmallLruCache cache(2);
    cache.insert(1, 10);
    cache.insert(2, 20);
    cache.lookup(1); // 2 is now LRU
    cache.insert(3, 30);
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_FALSE(cache.lookup(2).has_value());
    EXPECT_TRUE(cache.lookup(3).has_value());
}

TEST(SmallLruCache, InsertUpdatesExistingKey)
{
    SmallLruCache cache(2);
    cache.insert(1, 10);
    cache.insert(1, 99);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.lookup(1).value(), 99u);
}

TEST(SmallLruCache, ClearEmpties)
{
    SmallLruCache cache(4);
    cache.insert(1, 10);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup(1).has_value());
}

namespace
{

MmuCacheParams
smallPsc()
{
    MmuCacheParams p;
    p.pml4e_entries = 2;
    p.pdpe_entries = 4;
    p.pde_entries = 8;
    p.nested_entries = 4;
    p.latency = 2;
    return p;
}

} // namespace

TEST(MmuCaches, SkipPrefersDeepestLevel)
{
    MmuCaches mmu(smallPsc());
    const Addr va = 0x7f0012345000;

    EXPECT_FALSE(mmu.skipFor(1, va, false).has_value());

    mmu.fill(1, va, 4, false, 0xaaa000); // PML4E -> level-3 node
    auto skip = mmu.skipFor(1, va, false);
    ASSERT_TRUE(skip.has_value());
    EXPECT_EQ(skip->next_level, 3);
    EXPECT_EQ(skip->node_addr, 0xaaa000u);

    mmu.fill(1, va, 2, false, 0xccc000); // PDE -> level-1 node
    skip = mmu.skipFor(1, va, false);
    ASSERT_TRUE(skip.has_value());
    EXPECT_EQ(skip->next_level, 1);
    EXPECT_EQ(skip->node_addr, 0xccc000u);
}

TEST(MmuCaches, EntriesAreAsidTagged)
{
    MmuCaches mmu(smallPsc());
    const Addr va = 0x40000000;
    mmu.fill(1, va, 2, false, 0x111000);
    EXPECT_TRUE(mmu.skipFor(1, va, false).has_value());
    EXPECT_FALSE(mmu.skipFor(2, va, false).has_value());
}

TEST(MmuCaches, HostAndGuestDimensionsAreSeparate)
{
    MmuCaches mmu(smallPsc());
    const Addr va = 0x40000000;
    mmu.fill(1, va, 2, /*host=*/true, 0x222000);
    EXPECT_TRUE(mmu.skipFor(1, va, true).has_value());
    EXPECT_FALSE(mmu.skipFor(1, va, false).has_value());
}

TEST(MmuCaches, RegionsShareEntries)
{
    MmuCaches mmu(smallPsc());
    // Two addresses in the same 2MB region share the PDE entry.
    mmu.fill(1, 0x40000000, 2, false, 0x333000);
    EXPECT_TRUE(mmu.skipFor(1, 0x40000000 + 0x1ff000, false));
    // A different 2MB region does not.
    EXPECT_FALSE(mmu.skipFor(1, 0x40200000, false));
}

TEST(MmuCaches, NestedCacheRoundTrip)
{
    MmuCaches mmu(smallPsc());
    EXPECT_FALSE(mmu.nestedLookup(1, 0x12345678).has_value());
    mmu.nestedFill(1, 0x12345678, 0xbeef000);
    const auto hit = mmu.nestedLookup(1, 0x12345678);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 0xbeef000u);
    // Same guest-physical page, different offset: still hits.
    EXPECT_TRUE(mmu.nestedLookup(1, 0x12345000).has_value());
    // Different ASID: miss.
    EXPECT_FALSE(mmu.nestedLookup(2, 0x12345678).has_value());
}

TEST(MmuCaches, FillBadLevelPanics)
{
    MmuCaches mmu(smallPsc());
    EXPECT_DEATH(mmu.fill(1, 0, 1, false, 0), "bad level");
}
