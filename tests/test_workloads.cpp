/**
 * @file
 * Tests for the synthetic workload generators and the registry:
 * determinism, footprint discipline, record sanity, and the paper's
 * pairings (Table 3 / figure x-axes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/error.h"
#include "workloads/generators.h"
#include "workloads/registry.h"

using namespace csalt;

namespace
{

using Factory = std::unique_ptr<TraceSource> (*)(std::uint64_t,
                                                 unsigned, unsigned,
                                                 double);

struct WorkloadCase
{
    const char *name;
    Factory make;
};

class EveryWorkload : public ::testing::TestWithParam<WorkloadCase>
{
};

} // namespace

TEST_P(EveryWorkload, DeterministicPerSeedAndThread)
{
    const auto param = GetParam();
    auto a = param.make(42, 3, 8, 0.05);
    auto b = param.make(42, 3, 8, 0.05);
    for (int i = 0; i < 5000; ++i) {
        const TraceRecord ra = a->next();
        const TraceRecord rb = b->next();
        ASSERT_EQ(ra.vaddr, rb.vaddr);
        ASSERT_EQ(ra.type, rb.type);
        ASSERT_EQ(ra.icount, rb.icount);
    }
}

TEST_P(EveryWorkload, ThreadsDiffer)
{
    const auto param = GetParam();
    auto a = param.make(42, 0, 8, 0.05);
    auto b = param.make(42, 1, 8, 0.05);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        if (a->next().vaddr == b->next().vaddr)
            ++same;
    EXPECT_LT(same, 900);
}

TEST_P(EveryWorkload, RecordsAreSane)
{
    const auto param = GetParam();
    auto t = param.make(7, 0, 8, 0.05);
    for (int i = 0; i < 20000; ++i) {
        const TraceRecord r = t->next();
        ASSERT_GE(r.icount, 1u);
        ASSERT_LE(r.icount, 16u);
        ASSERT_EQ(r.vaddr % 8, 0u) << "unaligned reference";
        ASSERT_LT(r.vaddr, Addr{1} << 47) << "non-canonical address";
    }
}

TEST_P(EveryWorkload, FootprintIsBounded)
{
    const auto param = GetParam();
    auto t = param.make(7, 0, 8, 0.02);
    const std::uint64_t budget = t->footprintPages();
    ASSERT_GT(budget, 0u);

    std::unordered_set<Vpn> pages;
    for (int i = 0; i < 200000; ++i)
        pages.insert(t->next().vaddr >> kPageShift);
    EXPECT_LE(pages.size(), budget);
}

TEST_P(EveryWorkload, ScaleShrinksFootprint)
{
    const auto param = GetParam();
    auto big = param.make(7, 0, 8, 1.0);
    auto small = param.make(7, 0, 8, 0.01);
    EXPECT_GT(big->footprintPages(), small->footprintPages());
}

TEST_P(EveryWorkload, ProducesReadsAndWrites)
{
    const auto param = GetParam();
    auto t = param.make(9, 0, 8, 0.05);
    int reads = 0;
    int writes = 0;
    for (int i = 0; i < 20000; ++i) {
        if (t->next().type == AccessType::write)
            ++writes;
        else
            ++reads;
    }
    EXPECT_GT(reads, 0);
    EXPECT_GT(writes, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Generators, EveryWorkload,
    ::testing::Values(WorkloadCase{"gups", makeGups},
                      WorkloadCase{"canneal", makeCanneal},
                      WorkloadCase{"graph500", makeGraph500},
                      WorkloadCase{"pagerank", makePagerank},
                      WorkloadCase{"ccomp", makeCcomp},
                      WorkloadCase{"streamcluster", makeStreamcluster}),
    [](const auto &info) { return std::string(info.param.name); });

// ------------------------------------------------------------ registry

TEST(Registry, KnowsAllSixWorkloads)
{
    const auto names = workloadNames();
    EXPECT_EQ(names.size(), 6u);
    for (const auto &n : names) {
        const auto &desc = workloadDesc(n);
        EXPECT_EQ(desc.name, n);
        EXPECT_GE(desc.huge_fraction, 0.0);
        EXPECT_LE(desc.huge_fraction, 1.0);
        auto t = desc.make(1, 0, 8, 0.05);
        EXPECT_EQ(t->name(), n);
    }
}

TEST(Registry, PaperPairsResolve)
{
    const auto labels = paperPairLabels();
    EXPECT_EQ(labels.size(), 10u);
    for (const auto &label : labels) {
        const PairSpec pair = resolvePair(label);
        EXPECT_EQ(pair.label, label);
        EXPECT_NO_FATAL_FAILURE(workloadDesc(pair.vm1));
        EXPECT_NO_FATAL_FAILURE(workloadDesc(pair.vm2));
    }
}

TEST(Registry, HomogeneousLabelsPairWithThemselves)
{
    const PairSpec pair = resolvePair("gups");
    EXPECT_EQ(pair.vm1, "gups");
    EXPECT_EQ(pair.vm2, "gups");
}

TEST(Registry, HeterogeneousLabels)
{
    EXPECT_EQ(resolvePair("can_ccomp").vm2, "ccomp");
    EXPECT_EQ(resolvePair("graph500_gups").vm1, "graph500");
    EXPECT_EQ(resolvePair("page_stream").vm2, "streamcluster");
    // Alternate spellings used across the paper's figures.
    EXPECT_EQ(resolvePair("can_strcls").vm2, "streamcluster");
    EXPECT_EQ(resolvePair("pagerank_strcls").vm1, "pagerank");
}

TEST(Registry, UnknownWorkloadIsTypedConfigError)
{
    try {
        workloadDesc("nosuch");
        FAIL() << "expected a config error";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::config);
        const std::string what = e.what();
        EXPECT_NE(what.find("unknown workload"), std::string::npos)
            << what;
        // The hint enumerates the valid names.
        EXPECT_NE(e.error().hint.find("gups"), std::string::npos);
        EXPECT_NE(e.error().hint.find("file:<path>"),
                  std::string::npos);
    }
}

TEST(Registry, StreamclusterIsThpFriendly)
{
    EXPECT_GT(workloadDesc("streamcluster").huge_fraction, 0.5);
    EXPECT_LT(workloadDesc("ccomp").huge_fraction, 0.05);
}
