/**
 * @file
 * End-to-end integration tests: build complete systems with the
 * public API, run short slices, and check cross-module invariants —
 * determinism, context-switch accounting, walk elimination under the
 * POM-TLB, scheme configuration, and metric consistency.
 *
 * Footprints are scaled way down (scale ~0.01) so each test runs in
 * tens of milliseconds.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/atomic_io.h"
#include "common/error.h"
#include "sim/metrics.h"
#include "sim/system_builder.h"

using namespace csalt;

namespace
{

BuildSpec
tinySpec(void (*apply)(SystemParams &),
         std::vector<std::string> workloads = {"canneal", "ccomp"})
{
    BuildSpec spec;
    apply(spec.params);
    spec.params.num_cores = 2;
    spec.params.cs_interval = 20'000;
    spec.params.seed = 5;
    spec.vm_workloads = std::move(workloads);
    spec.workload_scale = 0.01;
    return spec;
}

constexpr std::uint64_t kQuota = 60'000;

} // namespace

TEST(SystemIntegration, RunsToQuota)
{
    auto system = buildSystem(tinySpec(applyPomTlb));
    system->run(kQuota);
    for (unsigned c = 0; c < system->numCores(); ++c) {
        EXPECT_GE(system->core(c).instructions(), kQuota);
        EXPECT_GT(system->core(c).clock(), 0u);
    }
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    auto a = buildSystem(tinySpec(applyCsaltCD));
    auto b = buildSystem(tinySpec(applyCsaltCD));
    a->run(kQuota);
    b->run(kQuota);
    const auto ma = collectMetrics(*a);
    const auto mb = collectMetrics(*b);
    EXPECT_DOUBLE_EQ(ma.ipc_geomean, mb.ipc_geomean);
    EXPECT_EQ(ma.l2_tlb_misses, mb.l2_tlb_misses);
    EXPECT_EQ(ma.walks, mb.walks);
}

TEST(SystemIntegration, ContextSwitchesHappenOnSchedule)
{
    auto system = buildSystem(tinySpec(applyPomTlb));
    system->run(kQuota);
    for (unsigned c = 0; c < system->numCores(); ++c) {
        const auto &stats = system->core(c).stats();
        const auto expected =
            system->core(c).clock() / system->params().cs_interval;
        EXPECT_GT(stats.context_switches, 0u);
        EXPECT_LE(stats.context_switches, expected + 1);
        EXPECT_GE(stats.context_switches + 2, expected);
    }
}

TEST(SystemIntegration, SingleContextNeverSwitches)
{
    auto system = buildSystem(tinySpec(applyPomTlb, {"canneal"}));
    system->run(kQuota);
    EXPECT_EQ(system->core(0).stats().context_switches, 0u);
    EXPECT_EQ(system->core(0).numContexts(), 1u);
}

TEST(SystemIntegration, PomTlbEliminatesMostWalks)
{
    // gups at this scale: uniform reuse over ~2.6K pages — beyond the
    // 1536-entry L2 TLB (so misses recur) yet fully revisited during
    // warmup (so steady state has no compulsory walks). Zipf-tailed
    // workloads keep discovering new pages and genuinely keep
    // walking, which is why they are unsuitable for this check.
    auto spec = tinySpec(applyPomTlb, {"gups", "gups"});
    auto system = buildSystem(spec);
    // Warm up past the compulsory (first-touch) walks, then measure.
    system->run(2 * kQuota);
    system->clearAllStats();
    system->run(2 * kQuota);
    const auto m = collectMetrics(*system);
    ASSERT_GT(m.l2_tlb_misses, 100u);
    EXPECT_LT(m.walks, m.l2_tlb_misses);
    EXPECT_GT(m.walks_eliminated, 0.6);
}

TEST(SystemIntegration, ConventionalWalksOnEveryL2TlbMiss)
{
    auto system = buildSystem(tinySpec(applyConventional));
    system->run(kQuota);
    const auto m = collectMetrics(*system);
    EXPECT_EQ(m.walks, m.l2_tlb_misses);
    EXPECT_DOUBLE_EQ(m.walks_eliminated, 0.0);
}

TEST(SystemIntegration, CsaltPartitionsBothCacheLevels)
{
    auto system = buildSystem(tinySpec(applyCsaltCD));
    system->run(kQuota);
    EXPECT_TRUE(system->mem().l3().partitioned());
    EXPECT_TRUE(system->mem().l2(0).partitioned());
    EXPECT_GT(system->mem().l3Controller().epochsCompleted(), 0u);
    EXPECT_FALSE(
        system->mem().l3Controller().partitionTrace().empty());
}

TEST(SystemIntegration, PomModeLeavesCachesUnpartitioned)
{
    auto system = buildSystem(tinySpec(applyPomTlb));
    system->run(kQuota);
    EXPECT_FALSE(system->mem().l3().partitioned());
}

TEST(SystemIntegration, TsbModeProbesTheTsb)
{
    auto system = buildSystem(tinySpec(applyTsb));
    system->run(kQuota);
    EXPECT_GT(system->mem().tsb().stats().probes, 0u);
    // TSB still needs walks on TSB misses.
    const auto m = collectMetrics(*system);
    EXPECT_GT(m.walks, 0u);
}

TEST(SystemIntegration, DipModeDuelsInsertionPolicies)
{
    auto system = buildSystem(tinySpec(applyDipOverPom));
    system->run(kQuota);
    // DIP is active over the POM-TLB substrate: no partitioning.
    EXPECT_FALSE(system->mem().l3().partitioned());
    const auto m = collectMetrics(*system);
    EXPECT_GT(m.pom_hit_rate, 0.0);
}

TEST(SystemIntegration, MetricsAreInternallyConsistent)
{
    auto system = buildSystem(tinySpec(applyCsaltD));
    system->run(kQuota);
    const auto m = collectMetrics(*system);

    EXPECT_EQ(m.cores.size(), system->numCores());
    std::uint64_t instr = 0;
    for (const auto &core : m.cores) {
        EXPECT_GT(core.ipc, 0.0);
        EXPECT_LT(core.ipc, 4.0);
        instr += core.instructions;
    }
    EXPECT_EQ(instr, m.total_instructions);

    // Per-VM attribution covers all instructions.
    std::uint64_t vm_instr = 0;
    for (const auto &vm : m.vms)
        vm_instr += vm.instructions;
    EXPECT_EQ(vm_instr, m.total_instructions);

    EXPECT_GE(m.l1_tlb_mpki, m.l2_tlb_mpki);
    EXPECT_GE(m.l2_mpki_total, m.l2_mpki_data);
    EXPECT_GE(m.l2_translation_occupancy, 0.0);
    EXPECT_LE(m.l2_translation_occupancy, 1.0);
}

TEST(SystemIntegration, WarmupClearKeepsRunningCorrectly)
{
    auto system = buildSystem(tinySpec(applyPomTlb));
    system->run(kQuota / 2);
    system->clearAllStats();
    system->run(kQuota / 2);
    const auto m = collectMetrics(*system);
    for (const auto &core : m.cores) {
        EXPECT_GE(core.instructions, kQuota / 2);
        EXPECT_LT(core.instructions, kQuota);
        EXPECT_GT(core.ipc, 0.0);
    }
}

TEST(SystemIntegration, NativeModeRuns)
{
    auto spec = tinySpec(applyCsaltCD);
    spec.params.virtualized = false;
    auto system = buildSystem(spec);
    system->run(kQuota);
    const auto m = collectMetrics(*system);
    EXPECT_GT(m.ipc_geomean, 0.0);
}

TEST(SystemIntegration, FourContextsRotate)
{
    auto spec = tinySpec(applyPomTlb, {"canneal", "ccomp", "gups",
                                       "streamcluster"});
    auto system = buildSystem(spec);
    system->run(kQuota);
    EXPECT_EQ(system->core(0).numContexts(), 4u);
    EXPECT_GT(system->core(0).stats().context_switches, 2u);
    const auto m = collectMetrics(*system);
    EXPECT_EQ(m.vms.size(), 4u);
    for (const auto &vm : m.vms)
        EXPECT_GT(vm.instructions, 0u);
}

TEST(SystemIntegration, SeedChangesOutcome)
{
    auto spec_a = tinySpec(applyPomTlb);
    auto spec_b = tinySpec(applyPomTlb);
    spec_b.params.seed = 99;
    auto a = buildSystem(spec_a);
    auto b = buildSystem(spec_b);
    a->run(kQuota);
    b->run(kQuota);
    EXPECT_NE(collectMetrics(*a).l2_tlb_misses,
              collectMetrics(*b).l2_tlb_misses);
}

TEST(SystemIntegration, TraceStreamsToTmpAndCommitsAtomically)
{
    const std::string path =
        testing::TempDir() + "trace_commit_test.jsonl";
    const std::string tmp = atomicTmpPath(path);
    std::remove(path.c_str());
    std::remove(tmp.c_str());

    // Crash before the rename: the destination must stay absent (a
    // downstream reader never sees a torn trace), only the tmp
    // sibling holds the partial stream.
    {
        auto system = buildSystem(tinySpec(applyPomTlb));
        ASSERT_TRUE(system->openTrace(path));
        system->run(kQuota / 2);
        system->closeTrace(/*crash_before_rename=*/true);
    }
    EXPECT_FALSE(std::ifstream(path).good());
    EXPECT_TRUE(std::ifstream(tmp).good());
    std::remove(tmp.c_str());

    // The normal path (destructor-driven closeTrace) commits: the
    // destination exists, is non-empty JSONL, and the tmp is gone.
    {
        auto system = buildSystem(tinySpec(applyPomTlb));
        ASSERT_TRUE(system->openTrace(path));
        system->run(kQuota / 2);
    }
    std::ifstream committed(path);
    ASSERT_TRUE(committed.good());
    std::string first_line;
    ASSERT_TRUE(std::getline(committed, first_line));
    EXPECT_EQ(first_line.front(), '{');
    EXPECT_FALSE(std::ifstream(tmp).good());
    std::remove(path.c_str());
}

TEST(SystemIntegration, EmptyWorkloadListIsTypedBuildError)
{
    BuildSpec spec;
    try {
        buildSystem(spec);
        FAIL() << "expected a build error";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::build);
        EXPECT_NE(std::string(e.what()).find("at least one VM"),
                  std::string::npos)
            << e.what();
    }
}
