/**
 * @file
 * Differential test: the set-associative TLB against a reference
 * model (per-set recency list keyed by asid/vpn/page-size), under
 * randomized multi-ASID dual-page-size traffic with flushes.
 */

#include <gtest/gtest.h>

#include <list>
#include <vector>

#include "common/rng.h"
#include "tlb/tlb.h"

using namespace csalt;

namespace
{

struct Key
{
    Asid asid;
    Vpn vpn;
    PageSize ps;

    bool
    operator==(const Key &o) const
    {
        return asid == o.asid && vpn == o.vpn && ps == o.ps;
    }
};

/** Reference TLB: per-set std::list, MRU at front. */
class ReferenceTlb
{
  public:
    ReferenceTlb(std::uint64_t sets, unsigned ways)
        : ways_(ways), sets_(sets)
    {
    }

    bool
    lookup(const Key &key)
    {
        auto &set = sets_[key.vpn & (sets_.size() - 1)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == key) {
                set.splice(set.begin(), set, it);
                return true;
            }
        }
        return false;
    }

    void
    insert(const Key &key)
    {
        auto &set = sets_[key.vpn & (sets_.size() - 1)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == key) {
                set.splice(set.begin(), set, it);
                return;
            }
        }
        if (set.size() >= ways_)
            set.pop_back();
        set.push_front(key);
    }

    bool
    contains(const Key &key) const
    {
        const auto &set = sets_[key.vpn & (sets_.size() - 1)];
        for (const auto &k : set)
            if (k == key)
                return true;
        return false;
    }

    void
    flushAsid(Asid asid)
    {
        for (auto &set : sets_)
            set.remove_if(
                [asid](const Key &k) { return k.asid == asid; });
    }

  private:
    unsigned ways_;
    std::vector<std::list<Key>> sets_;
};

} // namespace

TEST(TlbDifferential, MatchesReferenceModel)
{
    constexpr unsigned kWays = 4;
    constexpr std::uint64_t kSets = 16;

    Tlb dut("diff", {kWays * kSets, kWays, 9});
    ReferenceTlb ref(kSets, kWays);
    Rng rng(77);

    for (int i = 0; i < 80000; ++i) {
        const Key key{static_cast<Asid>(1 + rng.below(3)),
                      rng.below(kSets * 6),
                      rng.chance(0.2) ? PageSize::size2M
                                      : PageSize::size4K};

        const bool dut_hit =
            dut.lookup(key.asid, key.vpn, key.ps).has_value();
        const bool ref_hit = ref.lookup(key);
        ASSERT_EQ(dut_hit, ref_hit) << "diverged at access " << i;

        if (!dut_hit) {
            TlbEntry entry;
            entry.asid = key.asid;
            entry.vpn = key.vpn;
            entry.frame = key.vpn << kPageShift;
            entry.ps = key.ps;
            entry.valid = true;
            dut.insert(entry);
            ref.insert(key);
        }

        if (i % 9001 == 9000) {
            const auto asid = static_cast<Asid>(1 + rng.below(3));
            dut.flushAsid(asid);
            ref.flushAsid(asid);
        }
    }
}

TEST(TlbDifferential, InsertHeavyTrafficMatches)
{
    // Inserts of already-present entries must promote, not duplicate.
    constexpr unsigned kWays = 4;
    constexpr std::uint64_t kSets = 8;

    Tlb dut("diff2", {kWays * kSets, kWays, 9});
    ReferenceTlb ref(kSets, kWays);
    Rng rng(99);

    for (int i = 0; i < 40000; ++i) {
        const Key key{1, rng.below(kSets * 5), PageSize::size4K};
        TlbEntry entry;
        entry.asid = key.asid;
        entry.vpn = key.vpn;
        entry.frame = key.vpn << kPageShift;
        entry.ps = key.ps;
        entry.valid = true;
        dut.insert(entry);
        ref.insert(key);

        const Key probe{1, rng.below(kSets * 5), PageSize::size4K};
        ASSERT_EQ(dut.contains(probe.asid, probe.vpn, probe.ps),
                  ref.contains(probe))
            << "diverged at access " << i;
    }
}
