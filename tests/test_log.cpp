/**
 * @file
 * Tests for the logging/termination helpers.
 */

#include <gtest/gtest.h>

#include "common/log.h"

using namespace csalt;

TEST(Log, MsgOfConcatenatesPieces)
{
    EXPECT_EQ(msgOf("ways=", 4, ", ok=", true), "ways=4, ok=1");
    EXPECT_EQ(msgOf(), "");
    EXPECT_EQ(msgOf(3.5), "3.5");
}

TEST(Log, LevelRoundTrip)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::debug);
    EXPECT_EQ(logLevel(), LogLevel::debug);
    setLogLevel(old);
}

TEST(Log, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("boom"), ::testing::ExitedWithCode(1), "boom");
}

TEST(Log, PanicAborts)
{
    EXPECT_DEATH(panic("invariant"), "invariant");
}
