/**
 * @file
 * Tests for the logging/termination helpers.
 */

#include <gtest/gtest.h>

#include "common/log.h"

using namespace csalt;

TEST(Log, MsgOfConcatenatesPieces)
{
    EXPECT_EQ(msgOf("ways=", 4, ", ok=", true), "ways=4, ok=1");
    EXPECT_EQ(msgOf(), "");
    EXPECT_EQ(msgOf(3.5), "3.5");
}

TEST(Log, LevelRoundTrip)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::debug);
    EXPECT_EQ(logLevel(), LogLevel::debug);
    setLogLevel(old);
}

TEST(Log, WarnOncePrintsOnlyOnFirstCallFromASite)
{
    bool first = false, second = false;
    for (int i = 0; i < 3; ++i) {
        // One call site, varying message: still prints exactly once.
        const bool printed = warnOnce(msgOf("telemetry anomaly #", i));
        (i == 0 ? first : second) |= printed;
    }
    EXPECT_TRUE(first);
    EXPECT_FALSE(second);
}

TEST(Log, WarnOnceDistinguishesCallSites)
{
    const auto site_a = [] { return warnOnce("site A"); };
    EXPECT_TRUE(site_a());
    EXPECT_TRUE(warnOnce("site B")); // different line = new site
    EXPECT_FALSE(site_a());          // repeat of the first site
}

TEST(Log, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("boom"), ::testing::ExitedWithCode(1), "boom");
}

TEST(Log, PanicAborts)
{
    EXPECT_DEATH(panic("invariant"), "invariant");
}
