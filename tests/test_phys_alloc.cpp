/**
 * @file
 * Tests for the pseudo-random physical frame allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/phys_alloc.h"

using namespace csalt;

TEST(FrameAllocator, Frames4KAreUniqueAlignedAndInRange)
{
    FrameAllocator alloc(0, 64ull << 20, 1);
    std::set<Addr> seen;
    for (int i = 0; i < 4000; ++i) {
        const Addr f = alloc.alloc4K();
        EXPECT_EQ(f % kPageSize, 0u);
        EXPECT_LT(f, 64ull << 20);
        EXPECT_TRUE(seen.insert(f).second) << "duplicate frame";
    }
    EXPECT_EQ(alloc.allocatedBytes(), 4000u * kPageSize);
}

TEST(FrameAllocator, Frames2MAreUniqueAligned)
{
    FrameAllocator alloc(0, 64ull << 20, 1);
    std::set<Addr> seen;
    for (int i = 0; i < 8; ++i) {
        const Addr f = alloc.alloc2M();
        EXPECT_EQ(f % kHugePageSize, 0u);
        EXPECT_LT(f, 64ull << 20);
        EXPECT_TRUE(seen.insert(f).second);
    }
}

TEST(FrameAllocator, ArenasDoNotOverlap)
{
    FrameAllocator alloc(0, 64ull << 20, 7);
    std::set<Addr> huge_pages;
    for (int i = 0; i < 4; ++i)
        huge_pages.insert(alloc.alloc2M());
    for (int i = 0; i < 2000; ++i) {
        const Addr f = alloc.alloc4K();
        for (Addr h : huge_pages) {
            EXPECT_FALSE(f >= h && f < h + kHugePageSize)
                << "4K frame inside a 2M frame";
        }
    }
}

TEST(FrameAllocator, DeterministicPerSeed)
{
    FrameAllocator a(0, 16ull << 20, 5);
    FrameAllocator b(0, 16ull << 20, 5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.alloc4K(), b.alloc4K());
}

TEST(FrameAllocator, SpreadsAcrossTheRange)
{
    FrameAllocator alloc(0, 256ull << 20, 3);
    // First few allocations should not be contiguous (OS-like spread).
    const Addr f0 = alloc.alloc4K();
    const Addr f1 = alloc.alloc4K();
    const Addr f2 = alloc.alloc4K();
    EXPECT_FALSE(f1 == f0 + kPageSize && f2 == f1 + kPageSize);
}

TEST(FrameAllocator, HonoursBase)
{
    FrameAllocator alloc(1ull << 30, (1ull << 30) + (16ull << 20), 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_GE(alloc.alloc4K(), 1ull << 30);
}

TEST(FrameAllocator, ExhaustionIsFatal)
{
    // Tiny arena: 2MB total, 1MB (256 frames) for 4K pages.
    EXPECT_EXIT(
        {
            FrameAllocator alloc(0, 2ull << 20, 1);
            for (int i = 0; i < 100000; ++i)
                alloc.alloc4K();
        },
        ::testing::ExitedWithCode(1), "out of 4KB frames");
}

TEST(FrameAllocator, HugeExhaustionIsFatal)
{
    EXPECT_EXIT(
        {
            FrameAllocator alloc(0, 8ull << 20, 1);
            for (int i = 0; i < 1000; ++i)
                alloc.alloc2M();
        },
        ::testing::ExitedWithCode(1), "out of 2MB frames");
}

TEST(FrameAllocator, RejectsBadRange)
{
    EXPECT_EXIT(FrameAllocator(0, 1000, 1),
                ::testing::ExitedWithCode(1), "bad range");
}
