/**
 * @file
 * Tests for the file-backed trace source and its registry hook.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workloads/registry.h"
#include "workloads/trace_file.h"

using namespace csalt;

namespace
{

const char *kSample = "# comment\n"
                      "R 1000 3\n"
                      "W 2fff 1\n"
                      "R deadbeef000 5\n";

} // namespace

TEST(TraceFile, ParsesRecords)
{
    const auto file = TraceFile::parse(kSample);
    ASSERT_EQ(file->records().size(), 3u);
    EXPECT_EQ(file->records()[0].vaddr, 0x1000u);
    EXPECT_EQ(file->records()[0].type, AccessType::read);
    EXPECT_EQ(file->records()[0].icount, 3u);
    EXPECT_EQ(file->records()[1].type, AccessType::write);
    EXPECT_EQ(file->records()[2].vaddr, 0xdeadbeef000u);
}

TEST(TraceFile, FormatRoundTrips)
{
    const auto file = TraceFile::parse(kSample);
    const std::string text = TraceFile::format(file->records());
    const auto again = TraceFile::parse(text);
    ASSERT_EQ(again->records().size(), file->records().size());
    for (std::size_t i = 0; i < file->records().size(); ++i) {
        EXPECT_EQ(again->records()[i].vaddr,
                  file->records()[i].vaddr);
        EXPECT_EQ(again->records()[i].type, file->records()[i].type);
        EXPECT_EQ(again->records()[i].icount,
                  file->records()[i].icount);
    }
}

TEST(TraceFile, BadRecordIsFatal)
{
    EXPECT_EXIT(TraceFile::parse("X 1000 3\n"),
                ::testing::ExitedWithCode(1), "bad trace record");
    EXPECT_EXIT(TraceFile::parse("R 1000 0\n"),
                ::testing::ExitedWithCode(1), "bad trace record");
    EXPECT_EXIT(TraceFile::parse("# only comments\n"),
                ::testing::ExitedWithCode(1), "empty trace");
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceFile::load("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileSource, LoopsEndlessly)
{
    const auto file = TraceFile::parse(kSample);
    TraceFileSource src(file, /*thread=*/0);
    for (std::size_t i = 0; i < 9; ++i) {
        const TraceRecord rec = src.next();
        EXPECT_EQ(rec.vaddr, file->records()[i % 3].vaddr);
    }
}

TEST(TraceFileSource, ThreadsStartStaggered)
{
    const auto file = TraceFile::parse(kSample);
    TraceFileSource a(file, 0);
    TraceFileSource b(file, 1);
    EXPECT_NE(a.next().vaddr, b.next().vaddr);
}

TEST(TraceFileSource, FootprintCountsDistinctPages)
{
    const auto file = TraceFile::parse(kSample);
    TraceFileSource src(file, 0);
    EXPECT_EQ(src.footprintPages(), 3u); // 0x1, 0x2, 0xdeadbeef
}

TEST(TraceFileRegistry, FileSchemeResolves)
{
    // Write a real temp file and load it through the registry.
    const std::string path = ::testing::TempDir() + "csalt_trace.txt";
    {
        std::ofstream out(path);
        out << kSample;
    }
    const auto &desc = workloadDesc("file:" + path);
    auto src = desc.make(1, 0, 8, 1.0);
    EXPECT_EQ(src->next().vaddr, 0x1000u);
    std::remove(path.c_str());
}
