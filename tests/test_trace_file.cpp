/**
 * @file
 * Tests for the file-backed trace source and its registry hook.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.h"
#include "workloads/registry.h"
#include "workloads/trace_file.h"

using namespace csalt;

namespace
{

const char *kSample = "# comment\n"
                      "R 1000 3\n"
                      "W 2fff 1\n"
                      "R deadbeef000 5\n";

/** Parse @p text expecting a typed parse error; returns it. */
Error
parseError(const std::string &text)
{
    try {
        TraceFile::parse(text, "test.trace");
    } catch (const CsaltError &e) {
        return e.error();
    }
    ADD_FAILURE() << "expected a parse error for: " << text;
    return {};
}

::testing::AssertionResult
mentions(const Error &err, const std::string &needle)
{
    if (oneLine(err).find(needle) != std::string::npos)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "'" << oneLine(err) << "' does not mention '" << needle
           << "'";
}

} // namespace

TEST(TraceFile, ParsesRecords)
{
    const auto file = TraceFile::parse(kSample);
    ASSERT_EQ(file->records().size(), 3u);
    EXPECT_EQ(file->records()[0].vaddr, 0x1000u);
    EXPECT_EQ(file->records()[0].type, AccessType::read);
    EXPECT_EQ(file->records()[0].icount, 3u);
    EXPECT_EQ(file->records()[1].type, AccessType::write);
    EXPECT_EQ(file->records()[2].vaddr, 0xdeadbeef000u);
}

TEST(TraceFile, FormatRoundTrips)
{
    const auto file = TraceFile::parse(kSample);
    const std::string text = TraceFile::format(file->records());
    const auto again = TraceFile::parse(text);
    ASSERT_EQ(again->records().size(), file->records().size());
    for (std::size_t i = 0; i < file->records().size(); ++i) {
        EXPECT_EQ(again->records()[i].vaddr,
                  file->records()[i].vaddr);
        EXPECT_EQ(again->records()[i].type, file->records()[i].type);
        EXPECT_EQ(again->records()[i].icount,
                  file->records()[i].icount);
    }
}

TEST(TraceFile, MalformedRecordMatrix)
{
    // One case per way a converter can mangle a record. Every error
    // must be kind=parse and name what is wrong.
    const struct
    {
        const char *text;
        const char *needle;
    } cases[] = {
        {"X 1000 3\n", "bad op 'X'"},
        {"read 1000 3\n", "bad op 'read'"},
        {"R\n", "missing address"},
        {"R zzzz 3\n", "bad hex address 'zzzz'"},
        {"R 0x 3\n", "bad hex address '0x'"},
        {"R 11112222333344445 3\n", "bad hex address"}, // 17 digits
        {"R 1000\n", "missing icount"},
        {"R 1000 3x\n", "bad icount '3x'"},
        {"R 1000 0\n", "icount out of range '0'"},
        {"R 1000 5000000000\n", "icount out of range"}, // > uint32
        {"R 1000 3 junk\n", "trailing fields after icount"},
        {"# only comments\n", "empty trace"},
        {"", "empty trace"},
    };
    for (const auto &c : cases) {
        const Error err = parseError(c.text);
        EXPECT_EQ(err.kind, ErrorKind::parse) << c.text;
        EXPECT_TRUE(mentions(err, c.needle)) << c.text;
    }
}

TEST(TraceFile, TruncatedFinalRecordIsRejected)
{
    // A crash mid-write leaves a record without its final newline;
    // the diagnostic must say so rather than a generic field error.
    const Error err = parseError("R 1000 3\nW 2000");
    EXPECT_EQ(err.kind, ErrorKind::parse);
    EXPECT_TRUE(mentions(err, "truncated"));
    EXPECT_TRUE(mentions(err, "missing final newline"));
}

TEST(TraceFile, ParseErrorPinpointsTheRecord)
{
    // Line 4 of the text, second real record, byte offset of the
    // line start ("# c\n" = 4 bytes, "R 1000 3\n" = 9, "\n" = 1).
    const Error err = parseError("# c\nR 1000 3\n\nW bad!hex 1\n");
    EXPECT_TRUE(mentions(err, "line 4"));
    EXPECT_TRUE(mentions(err, "record 1"));
    EXPECT_TRUE(mentions(err, "byte offset 14"));
    EXPECT_EQ(err.context, "test.trace");
    EXPECT_FALSE(err.hint.empty());
}

TEST(TraceFile, OverlongLineIsTruncatedInTheDiagnostic)
{
    const std::string line = "R " + std::string(500, 'z') + " 3\n";
    const Error err = parseError(line);
    EXPECT_TRUE(mentions(err, "..."));
    // Both the echoed field and the echoed line are clipped, so the
    // one-line rendering stays far below the input size.
    EXPECT_LT(oneLine(err).size(), 400u);
}

TEST(TraceFile, MissingFileIsTypedIoError)
{
    try {
        TraceFile::load("/nonexistent/trace.txt");
        FAIL() << "expected an io error";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::io);
        EXPECT_TRUE(mentions(e.error(), "cannot open"));
        EXPECT_EQ(e.error().context, "/nonexistent/trace.txt");
    }
}

TEST(TraceFileSource, LoopsEndlessly)
{
    const auto file = TraceFile::parse(kSample);
    TraceFileSource src(file, /*thread=*/0);
    for (std::size_t i = 0; i < 9; ++i) {
        const TraceRecord rec = src.next();
        EXPECT_EQ(rec.vaddr, file->records()[i % 3].vaddr);
    }
}

TEST(TraceFileSource, ThreadsStartStaggered)
{
    const auto file = TraceFile::parse(kSample);
    TraceFileSource a(file, 0);
    TraceFileSource b(file, 1);
    EXPECT_NE(a.next().vaddr, b.next().vaddr);
}

TEST(TraceFileSource, FootprintCountsDistinctPages)
{
    const auto file = TraceFile::parse(kSample);
    TraceFileSource src(file, 0);
    EXPECT_EQ(src.footprintPages(), 3u); // 0x1, 0x2, 0xdeadbeef
}

TEST(TraceFileRegistry, FileSchemeResolves)
{
    // Write a real temp file and load it through the registry.
    const std::string path = ::testing::TempDir() + "csalt_trace.txt";
    {
        std::ofstream out(path);
        out << kSample;
    }
    const auto &desc = workloadDesc("file:" + path);
    auto src = desc.make(1, 0, 8, 1.0);
    EXPECT_EQ(src->next().vaddr, 0x1000u);
    std::remove(path.c_str());
}
