/**
 * @file
 * Tests for the Mattson stack-distance profiler and the shadow tag
 * arrays, including the key correctness property: for true LRU with
 * full set coverage, hitsUpTo(A) exactly predicts the hits of a real
 * A-way cache over the same access stream.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/cache.h"
#include "cache/stack_dist.h"
#include "common/rng.h"

using namespace csalt;

TEST(StackDistProfiler, CountersAndTotal)
{
    StackDistProfiler prof(4);
    prof.recordHit(0);
    prof.recordHit(0);
    prof.recordHit(3);
    prof.recordMiss();

    EXPECT_EQ(prof.counter(0), 2u);
    EXPECT_EQ(prof.counter(3), 1u);
    EXPECT_EQ(prof.counter(4), 1u); // miss counter
    EXPECT_EQ(prof.total(), 4u);
    EXPECT_EQ(prof.hitsUpTo(1), 2u);
    EXPECT_EQ(prof.hitsUpTo(4), 3u);
    EXPECT_EQ(prof.hitsUpTo(99), 3u); // clamped
}

TEST(StackDistProfiler, ResetAndDecay)
{
    StackDistProfiler prof(4);
    for (int i = 0; i < 8; ++i)
        prof.recordHit(1);
    prof.decay();
    EXPECT_EQ(prof.counter(1), 4u);
    EXPECT_EQ(prof.total(), 4u);
    prof.reset();
    EXPECT_EQ(prof.total(), 0u);
    EXPECT_EQ(prof.counter(1), 0u);
}

TEST(StackDistProfiler, SetCounters)
{
    StackDistProfiler prof(8);
    prof.setCounters({3, 11, 12, 8, 9, 2, 1, 4, 10});
    EXPECT_EQ(prof.hitsUpTo(4), 34u);
    EXPECT_EQ(prof.total(), 60u);
}

TEST(StackDistProfiler, OutOfRangePanics)
{
    StackDistProfiler prof(4);
    EXPECT_DEATH(prof.recordHit(4), "out of range");
}

TEST(ShadowTagArray, ColdMissesThenHits)
{
    ShadowTagArray shadow(8, 4, ReplacementKind::trueLru,
                          /*sample_shift=*/0);
    shadow.access(0, 100);
    shadow.access(0, 101);
    EXPECT_EQ(shadow.profiler().counter(4), 2u); // two misses

    shadow.access(0, 101); // MRU hit
    EXPECT_EQ(shadow.profiler().counter(0), 1u);
    shadow.access(0, 100); // distance 1
    EXPECT_EQ(shadow.profiler().counter(1), 1u);
}

TEST(ShadowTagArray, EvictsAtCapacity)
{
    ShadowTagArray shadow(4, 2, ReplacementKind::trueLru, 0);
    shadow.access(0, 1);
    shadow.access(0, 2);
    shadow.access(0, 3); // evicts tag 1
    shadow.access(0, 1); // miss again
    // Counter index 2 == ways is the miss counter: all four accesses
    // missed the 2-way shadow.
    EXPECT_EQ(shadow.profiler().counter(2), 4u);
    EXPECT_EQ(shadow.profiler().total(), 4u);
    EXPECT_EQ(shadow.profiler().hitsUpTo(2), 0u);
}

TEST(ShadowTagArray, SamplingSkipsSets)
{
    ShadowTagArray shadow(64, 4, ReplacementKind::trueLru,
                          /*sample_shift=*/3);
    EXPECT_TRUE(shadow.sampled(0));
    EXPECT_FALSE(shadow.sampled(1));
    EXPECT_TRUE(shadow.sampled(8));

    shadow.access(1, 42); // unsampled: no counters move
    EXPECT_EQ(shadow.profiler().total(), 0u);
    shadow.access(8, 42);
    EXPECT_EQ(shadow.profiler().total(), 1u);
}

/**
 * Mattson inclusion property: the profiler of a fully-covered
 * true-LRU shadow predicts, for every smaller associativity A, the
 * exact hit count of a real A-way cache on the same stream.
 */
TEST(ShadowTagArray, PredictsSmallerCachesExactly)
{
    constexpr std::uint64_t kSets = 16;
    constexpr unsigned kWays = 8;

    ShadowTagArray shadow(kSets, kWays, ReplacementKind::trueLru, 0);

    // Real caches of every associativity 1..kWays over kSets sets.
    std::vector<std::unique_ptr<Cache>> caches;
    for (unsigned a = 1; a <= kWays; ++a) {
        CacheParams p;
        p.name = "probe";
        p.ways = a;
        p.size_bytes = kSets * a * kLineSize;
        caches.push_back(std::make_unique<Cache>(p));
    }

    Rng rng(1234);
    for (int i = 0; i < 20000; ++i) {
        // Zipf-ish reuse over 64 lines per set keeps all stack
        // distances exercised.
        const std::uint64_t line =
            rng.zipf(kSets * 64, 0.6); // line number
        const Addr addr = line << kLineShift;
        const std::uint64_t set = line & (kSets - 1);
        shadow.access(set, static_cast<Addr>(line));
        for (auto &cache : caches)
            cache->access(addr, AccessType::read, LineType::data);
    }

    for (unsigned a = 1; a <= kWays; ++a) {
        EXPECT_EQ(shadow.profiler().hitsUpTo(a),
                  caches[a - 1]->stats().totalHits())
            << "assoc " << a;
    }
}

/**
 * Pseudo-LRU estimates degrade gracefully: the predicted hit counts
 * should stay within a loose band of the true-LRU prediction
 * (Kedzierski et al. report minor degradation, paper §3.4).
 */
TEST(ShadowTagArray, PseudoLruEstimatesTrackTrueLru)
{
    constexpr std::uint64_t kSets = 16;
    constexpr unsigned kWays = 8;

    ShadowTagArray truth(kSets, kWays, ReplacementKind::trueLru, 0);
    ShadowTagArray nru(kSets, kWays, ReplacementKind::nru, 0);
    ShadowTagArray plru(kSets, kWays, ReplacementKind::btPlru, 0);

    Rng rng(99);
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t line = rng.zipf(kSets * 32, 0.7);
        const std::uint64_t set = line & (kSets - 1);
        truth.access(set, static_cast<Addr>(line));
        nru.access(set, static_cast<Addr>(line));
        plru.access(set, static_cast<Addr>(line));
    }

    const double base =
        static_cast<double>(truth.profiler().hitsUpTo(kWays / 2));
    ASSERT_GT(base, 0.0);
    const double nru_pred =
        static_cast<double>(nru.profiler().hitsUpTo(kWays / 2));
    const double plru_pred =
        static_cast<double>(plru.profiler().hitsUpTo(kWays / 2));
    EXPECT_NEAR(nru_pred / base, 1.0, 0.35);
    EXPECT_NEAR(plru_pred / base, 1.0, 0.35);
}
