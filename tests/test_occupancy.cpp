/**
 * @file
 * Tests for the occupancy sampler (paper Fig. 3 instrumentation).
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/occupancy.h"

using namespace csalt;

namespace
{

CacheParams
tiny()
{
    CacheParams p;
    p.name = "occ";
    p.ways = 2;
    p.size_bytes = 4 * 2 * kLineSize; // 4 sets x 2 ways
    return p;
}

} // namespace

TEST(Occupancy, TracksTranslationFraction)
{
    Cache cache(tiny());
    OccupancySampler sampler(cache);

    sampler.sample(0.0);
    EXPECT_DOUBLE_EQ(sampler.meanTranslationFraction(), 0.0);

    // Fill half the cache with translation lines.
    for (std::uint64_t set = 0; set < 4; ++set) {
        cache.access((set) << kLineShift, AccessType::read,
                     LineType::translation);
    }
    sampler.sample(1.0);
    // 4 of 8 lines -> the two samples average 0.25.
    EXPECT_DOUBLE_EQ(sampler.series().points().back().value, 0.5);
    EXPECT_DOUBLE_EQ(sampler.meanTranslationFraction(), 0.25);
}

TEST(Occupancy, FollowsTypeTurnover)
{
    Cache cache(tiny());
    OccupancySampler sampler(cache);

    const Addr a = 0; // set 0
    cache.access(a, AccessType::read, LineType::translation);
    sampler.sample(0.0);
    const double before = sampler.series().points().back().value;

    // The same line re-fetched as data after invalidation flips type.
    cache.invalidate(a);
    cache.access(a, AccessType::read, LineType::data);
    sampler.sample(1.0);
    const double after = sampler.series().points().back().value;
    EXPECT_GT(before, after);
    EXPECT_DOUBLE_EQ(after, 0.0);
}

TEST(Occupancy, ResetDropsHistory)
{
    Cache cache(tiny());
    OccupancySampler sampler(cache);
    cache.access(0, AccessType::read, LineType::translation);
    sampler.sample(0.0);
    EXPECT_FALSE(sampler.series().empty());

    sampler.reset();
    EXPECT_TRUE(sampler.series().empty());
    EXPECT_DOUBLE_EQ(sampler.meanTranslationFraction(), 0.0);
}

TEST(Occupancy, EvictionReducesCount)
{
    Cache cache(tiny());
    // Two translation lines in set 0 (the whole set).
    cache.access(0, AccessType::read, LineType::translation);
    cache.access(4 << kLineShift, AccessType::read,
                 LineType::translation);
    EXPECT_EQ(cache.scanCountOf(LineType::translation), 2u);

    // A data fill in the same set evicts one of them.
    cache.access(8 << kLineShift, AccessType::read, LineType::data);
    EXPECT_EQ(cache.scanCountOf(LineType::translation), 1u);
    EXPECT_DOUBLE_EQ(cache.occupancyOf(LineType::translation),
                     1.0 / 8.0);
}
