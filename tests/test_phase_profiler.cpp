/**
 * @file
 * Tests for the in-simulator self-profiler (obs/phase_profiler.h):
 * disarmed scopes record nothing, armed scopes land in the right
 * phase, per-thread reports stay isolated while the global report
 * merges, and an instrumented System run surfaces a self_profile
 * section in its metrics without perturbing simulated results.
 */

#include <gtest/gtest.h>

#include <thread>

#include "obs/phase_profiler.h"
#include "sim/metrics.h"
#include "sim/metrics_io.h"
#include "sim/system_builder.h"

using namespace csalt;

namespace
{

/** Each test starts from a clean, disarmed profiler. */
class PhaseProfilerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::PhaseProfiler::setEnabled(false);
        obs::PhaseProfiler::reset();
    }
    void TearDown() override
    {
        obs::PhaseProfiler::setEnabled(false);
        obs::PhaseProfiler::reset();
    }
};

BuildSpec
tinySpec()
{
    BuildSpec spec;
    applyCsaltCD(spec.params);
    spec.params.num_cores = 2;
    spec.params.cs_interval = 20'000;
    spec.params.seed = 5;
    spec.vm_workloads = {"canneal", "ccomp"};
    spec.workload_scale = 0.01;
    return spec;
}

} // namespace

TEST_F(PhaseProfilerTest, DisarmedScopesRecordNothing)
{
    {
        CSALT_PROFILE_SCOPE(tlb_probe);
        CSALT_PROFILE_SCOPE(dram);
    }
    const auto report = obs::PhaseProfiler::threadReport();
    EXPECT_EQ(report.totalNs(), 0.0);
    for (const auto &entry : report.phases)
        EXPECT_EQ(entry.digest.count, 0u);
}

TEST_F(PhaseProfilerTest, ArmedScopeLandsInItsPhase)
{
    obs::PhaseProfiler::setEnabled(true);
    for (int i = 0; i < 10; ++i) {
        CSALT_PROFILE_SCOPE(page_walk);
    }
    {
        CSALT_PROFILE_SCOPE(dram);
    }
    const auto report = obs::PhaseProfiler::threadReport();
    const auto &walk = report.phases[static_cast<std::size_t>(
        obs::Phase::page_walk)];
    const auto &dram =
        report.phases[static_cast<std::size_t>(obs::Phase::dram)];
    const auto &tlb = report.phases[static_cast<std::size_t>(
        obs::Phase::tlb_probe)];
    EXPECT_EQ(walk.digest.count, 10u);
    EXPECT_EQ(dram.digest.count, 1u);
    EXPECT_EQ(tlb.digest.count, 0u);
}

TEST_F(PhaseProfilerTest, PhaseNamesAreStable)
{
    EXPECT_STREQ(obs::phaseName(obs::Phase::tlb_probe), "tlb_probe");
    EXPECT_STREQ(obs::phaseName(obs::Phase::pom_access),
                 "pom_access");
    EXPECT_STREQ(obs::phaseName(obs::Phase::page_walk), "page_walk");
    EXPECT_STREQ(obs::phaseName(obs::Phase::cache_access),
                 "cache_access");
    EXPECT_STREQ(obs::phaseName(obs::Phase::dram), "dram");
    EXPECT_STREQ(obs::phaseName(obs::Phase::journal_io),
                 "journal_io");
    EXPECT_STREQ(obs::phaseName(obs::Phase::checker), "checker");
}

TEST_F(PhaseProfilerTest, ThreadReportsAreIsolatedGlobalMerges)
{
    obs::PhaseProfiler::setEnabled(true);
    {
        CSALT_PROFILE_SCOPE(tlb_probe);
    }
    std::thread other([] {
        for (int i = 0; i < 5; ++i) {
            CSALT_PROFILE_SCOPE(dram);
        }
        const auto mine = obs::PhaseProfiler::threadReport();
        EXPECT_EQ(mine.phases[static_cast<std::size_t>(
                                  obs::Phase::dram)]
                      .digest.count,
                  5u);
        // The main thread's tlb_probe scope is invisible here.
        EXPECT_EQ(mine.phases[static_cast<std::size_t>(
                                  obs::Phase::tlb_probe)]
                      .digest.count,
                  0u);
    });
    other.join();

    // The global merge sees both threads — including the exited one.
    const auto merged = obs::PhaseProfiler::globalReport();
    EXPECT_EQ(merged.phases[static_cast<std::size_t>(
                                obs::Phase::tlb_probe)]
                  .digest.count,
              1u);
    EXPECT_EQ(
        merged.phases[static_cast<std::size_t>(obs::Phase::dram)]
            .digest.count,
        5u);
}

TEST_F(PhaseProfilerTest, InstrumentedRunFillsSelfProfile)
{
    obs::PhaseProfiler::setEnabled(true);
    auto system = buildSystem(tinySpec());
    system->run(60'000);
    const RunMetrics metrics = collectMetrics(*system);

    ASSERT_FALSE(metrics.self_profile.empty());
    double total = 0.0;
    bool saw_tlb = false;
    for (const auto &phase : metrics.self_profile) {
        EXPECT_GT(phase.digest.count, 0u) << phase.name;
        total += phase.digest.sum;
        saw_tlb = saw_tlb || phase.name == "tlb_probe";
    }
    EXPECT_GT(total, 0.0);
    EXPECT_TRUE(saw_tlb);

    // The section reaches the metrics JSON...
    const std::string json = metricsJson("profiled", metrics);
    EXPECT_NE(json.find("\"self_profile\""), std::string::npos);
    EXPECT_NE(json.find("\"tlb_probe\""), std::string::npos);
    // ...but never the resume journal (host time is not replayable).
    EXPECT_EQ(metricsJournalJson(metrics).find("self_profile"),
              std::string::npos);
}

TEST_F(PhaseProfilerTest, ProfilingNeverChangesSimulatedResults)
{
    auto plain = buildSystem(tinySpec());
    plain->run(60'000);
    const RunMetrics base = collectMetrics(*plain);

    obs::PhaseProfiler::setEnabled(true);
    auto profiled = buildSystem(tinySpec());
    profiled->run(60'000);
    const RunMetrics prof = collectMetrics(*profiled);
    obs::PhaseProfiler::setEnabled(false);

    // Identical simulated behavior: the journal encoding is
    // bit-exact and excludes host-time fields.
    EXPECT_EQ(metricsJournalJson(base), metricsJournalJson(prof));
    EXPECT_TRUE(base.self_profile.empty());
    EXPECT_FALSE(prof.self_profile.empty());
}
