#!/usr/bin/env bash
# Tool-level contract checks, run as one ctest case:
#
#  - trace_inspect exit-code matrix: unreadable, empty, or fully
#    malformed traces must FAIL (typed error, non-zero exit) instead
#    of printing empty tables and returning 0; a trace with a bad
#    tail reports partial data but still exits 1.
#  - snapshot matrix: csalt-sim --checkpoint-out writes a CSALTSNAP
#    file trace_inspect --snapshot dumps (exit 0); a missing path is
#    a typed io error, truncated and bit-flipped checkpoints are
#    typed parse errors naming the chunk/offset, and --restore from
#    the checkpoint reproduces the uninterrupted run's metrics JSON
#    byte for byte.
#  - live attach smoke: csalt-sim --live + trace_inspect --attach
#    against the region (live or post-mortem), table and NDJSON modes.
#  - bench_report gate: a synthetic regressed results file must trip
#    the gate (exit 1); a within-threshold file must pass; mismatched
#    bench metrics and missing files are typed failures.
#
# Usage: run_tool_checks.sh <csalt-sim> <trace_inspect> <bench_report>
set -euo pipefail

SIM="$1"
INSPECT="$2"
REPORT="$3"

tmp="$(mktemp -d /tmp/csalt-toolchk-XXXXXX)"
trap 'rm -rf "$tmp"' EXIT

expect_rc() {
    local want="$1"
    shift
    local rc=0
    "$@" > "$tmp/last.out" 2> "$tmp/last.err" || rc=$?
    if [[ "$rc" != "$want" ]]; then
        echo "FAIL: '$*' exited $rc, want $want"
        cat "$tmp/last.out" "$tmp/last.err"
        exit 1
    fi
}

echo "== trace_inspect: malformed-input matrix =="
expect_rc 1 "$INSPECT" "$tmp/does-not-exist.jsonl"
grep -q 'error\[io\]' "$tmp/last.err" \
    || { echo "FAIL: missing file not a typed io error"; exit 1; }

: > "$tmp/empty.jsonl"
expect_rc 1 "$INSPECT" "$tmp/empty.jsonl"
grep -q 'error\[parse\]' "$tmp/last.err" \
    || { echo "FAIL: empty trace not a typed parse error"; exit 1; }

printf 'not json\n{"half": \n' > "$tmp/garbage.jsonl"
expect_rc 1 "$INSPECT" "$tmp/garbage.jsonl"
grep -q 'error\[parse\]' "$tmp/last.err" \
    || { echo "FAIL: garbage trace not a typed parse error"; exit 1; }

expect_rc 2 "$INSPECT" --follow-json "$tmp/empty.jsonl"

"$SIM" --vm gups --quota 60000 --warmup 20000 \
    --trace-out "$tmp/good.jsonl" --format csv > /dev/null
expect_rc 0 "$INSPECT" "$tmp/good.jsonl"

cp "$tmp/good.jsonl" "$tmp/torn.jsonl"
printf '{"type":"sample","t":99\n' >> "$tmp/torn.jsonl"
expect_rc 1 "$INSPECT" "$tmp/torn.jsonl"
grep -q 'partial data' "$tmp/last.err" \
    || { echo "FAIL: torn trace did not report partial data"; exit 1; }
echo "ok: trace_inspect exit codes"

echo "== snapshot matrix =="
ckpt="$tmp/run.ckpt"
# Uninterrupted reference run (checkpointing armed: it must not
# change the metrics), leaving periodic epoch-boundary checkpoints.
"$SIM" --vm gups --quota 60000 --warmup 20000 --seed 7 \
    --checkpoint-out "$ckpt" --checkpoint-every 1 \
    --format json > "$tmp/straight.json"
[[ -f "$ckpt" ]] || { echo "FAIL: no checkpoint written"; exit 1; }

expect_rc 0 "$INSPECT" --snapshot "$ckpt"
grep -q 'component chunks' "$tmp/last.out" \
    || { echo "FAIL: snapshot dump has no chunk table"; exit 1; }
grep -q 'core\.0' "$tmp/last.out" \
    || { echo "FAIL: snapshot dump lists no core chunk"; exit 1; }

expect_rc 1 "$INSPECT" --snapshot "$tmp/does-not-exist.ckpt"
grep -q 'error\[io\]' "$tmp/last.err" \
    || { echo "FAIL: missing snapshot not a typed io error"; exit 1; }

head -c 100 "$ckpt" > "$tmp/torn.ckpt"
expect_rc 1 "$INSPECT" --snapshot "$tmp/torn.ckpt"
grep -q 'error\[parse\]' "$tmp/last.err" \
    || { echo "FAIL: torn snapshot not a typed parse error"; exit 1; }

# Flip one payload byte mid-file: the per-chunk CRC must catch it
# and the diagnostic must name the chunk and byte offset.
python3 - "$ckpt" "$tmp/flipped.ckpt" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], 'rb').read())
data[len(data) // 2] ^= 0x40
open(sys.argv[2], 'wb').write(bytes(data))
EOF
expect_rc 1 "$INSPECT" --snapshot "$tmp/flipped.ckpt"
grep -q 'error\[parse\]' "$tmp/last.err" \
    || { echo "FAIL: flipped snapshot not a typed parse error"; exit 1; }
grep -q 'byte' "$tmp/last.err" \
    || { echo "FAIL: snapshot error names no byte offset"; exit 1; }
expect_rc 1 "$SIM" --vm gups --quota 60000 --warmup 20000 --seed 7 \
    --restore "$tmp/flipped.ckpt" --format json

# --snapshot is its own mode; mixing it with others is a usage error.
expect_rc 2 "$INSPECT" --snapshot "$ckpt" --spans "$tmp/x.bin"

# The rotation keeps the previous epoch's checkpoint at .1; restoring
# it and finishing must reproduce the uninterrupted metrics exactly.
[[ -f "$ckpt.1" ]] || { echo "FAIL: no rotated checkpoint"; exit 1; }
expect_rc 0 "$SIM" --vm gups --quota 60000 --warmup 20000 --seed 7 \
    --restore "$ckpt.1" --format json
cmp -s "$tmp/straight.json" "$tmp/last.out" \
    || { echo "FAIL: restored run diverged from straight run"; \
         diff "$tmp/straight.json" "$tmp/last.out" | head; exit 1; }

# Restoring under a different configuration must be refused.
expect_rc 1 "$SIM" --vm gups --quota 60000 --warmup 20000 --seed 8 \
    --restore "$ckpt" --format json
grep -q 'error\[config\]' "$tmp/last.err" \
    || { echo "FAIL: config mismatch not a typed error"; exit 1; }
echo "ok: snapshot matrix"

echo "== live attach smoke =="
region="$tmp/live.region"
"$SIM" --vm gups --quota 200000 --warmup 0 --live \
    --live-out "$region" --format csv > /dev/null 2>&1 &
sim_pid=$!
expect_rc 0 "$INSPECT" --attach "$region" --samples 3 --interval-ms 20
grep -q 'attached:' "$tmp/last.out" \
    || { echo "FAIL: attach printed no header"; exit 1; }
wait "$sim_pid"
# Post-mortem: the region outlives the sim with finished=true set.
expect_rc 0 "$INSPECT" --attach "$region" --follow-json --samples 1
python3 - "$tmp/last.out" <<'EOF'
import json, sys
line = open(sys.argv[1]).readline()
doc = json.loads(line)
assert doc["type"] == "live_sample", doc
assert doc["finished"] is True, "post-mortem snapshot not finished"
assert doc["values"], "no values in live sample"
print(f"ok: post-mortem live sample with {len(doc['values'])} values")
EOF
echo "ok: live attach"

echo "== bench_report: synthetic regression gate =="
results() {
    local maps="$1"
    printf '{"schema_version":2,"figure":"perf_throughput",'
    printf '"metric":"maps","quota":1000,"warmup":0,"failed_jobs":0,'
    printf '"rows":[{"label":"CSALT-CD","values":{"MAPS":%s}}],' "$maps"
    printf '"geomean":{"MAPS":%s},"wall_clock_s":1.0}\n' "$maps"
}
results 100 > "$tmp/base.json"
results 95 > "$tmp/ok.json"
results 80 > "$tmp/bad.json"

expect_rc 0 "$REPORT" --baseline "$tmp/base.json" \
    --threshold 10% "$tmp/ok.json"
expect_rc 1 "$REPORT" --baseline "$tmp/base.json" \
    --threshold 10% "$tmp/bad.json"
grep -q 'REGRESSION' "$tmp/last.out" \
    || { echo "FAIL: regressed run not flagged"; exit 1; }
# Lower-is-better flips the gate direction.
expect_rc 0 "$REPORT" --baseline "$tmp/base.json" \
    --threshold 10% --lower-is-better "$tmp/bad.json"
expect_rc 1 "$REPORT" --baseline "$tmp/bad.json" \
    --threshold 10% --lower-is-better "$tmp/base.json"
# Mismatched benches and unreadable files are typed failures.
sed 's/"maps"/"ipc"/' "$tmp/base.json" > "$tmp/other.json"
expect_rc 1 "$REPORT" --baseline "$tmp/base.json" "$tmp/other.json"
expect_rc 1 "$REPORT" --baseline "$tmp/missing.json" "$tmp/ok.json"
printf 'not json\n' > "$tmp/junk.json"
expect_rc 1 "$REPORT" --baseline "$tmp/base.json" "$tmp/junk.json"
# Wall-time cells mirror the rate metric as its reciprocal, so they
# gate at the reciprocal-equivalent threshold: MAPS 100->60 (-40%)
# with seconds 1->1.667 (+66.7%) is ONE slowdown, inside a 50% rate
# gate on both cells; MAPS 100->40 must trip it.
rate_and_wall() {
    printf '{"schema_version":2,"figure":"perf_throughput",'
    printf '"metric":"maps","quota":1000,"warmup":0,"failed_jobs":0,'
    printf '"rows":[{"label":"X","values":{"MAPS":%s,"seconds":%s}}],' \
        "$1" "$2"
    printf '"geomean":{"MAPS":%s},"wall_clock_s":1.0}\n' "$1"
}
rate_and_wall 100 1.0 > "$tmp/rw_base.json"
rate_and_wall 60 1.667 > "$tmp/rw_slow.json"
rate_and_wall 40 2.5 > "$tmp/rw_collapse.json"
expect_rc 0 "$REPORT" --baseline "$tmp/rw_base.json" \
    --threshold 50% "$tmp/rw_slow.json"
expect_rc 1 "$REPORT" --baseline "$tmp/rw_base.json" \
    --threshold 50% "$tmp/rw_collapse.json"
# Comparing runs of different lengths is refused — every delta would
# be an artifact of the quota mismatch.
sed 's/"quota":1000/"quota":100/' "$tmp/ok.json" > "$tmp/short.json"
expect_rc 1 "$REPORT" --baseline "$tmp/base.json" "$tmp/short.json"
grep -q 'error\[usage\]' "$tmp/last.err" \
    || { echo "FAIL: quota mismatch not a typed error"; exit 1; }
# A baseline config missing from the fresh run is a hard failure
# (a coverage hole reads as a clean pass otherwise), opt-out with
# --allow-retired; fresh-only configs are "new" and never gate.
two_schemes() {
    local a="$1" b="$2"
    printf '{"schema_version":2,"figure":"perf_throughput",'
    printf '"metric":"maps","quota":1000,"warmup":0,"failed_jobs":0,'
    printf '"rows":[{"label":"%s","values":{"MAPS":100}},' "$a"
    printf '{"label":"%s","values":{"MAPS":50}}],' "$b"
    printf '"geomean":{"MAPS":70.7},"wall_clock_s":1.0}\n'
}
two_schemes CSALT-CD POM-TLB > "$tmp/base2.json"
two_schemes NEW-SCHEME POM-TLB > "$tmp/gone.json"
expect_rc 1 "$REPORT" --baseline "$tmp/base2.json" \
    --threshold 10% "$tmp/gone.json"
grep -q 'VANISHED' "$tmp/last.out" \
    || { echo "FAIL: vanished config not flagged"; exit 1; }
grep -Eq 'NEW-SCHEME/MAPS.*new' "$tmp/last.out" \
    || { echo "FAIL: fresh-only config not reported as new"; exit 1; }
expect_rc 0 "$REPORT" --baseline "$tmp/base2.json" --threshold 10% \
    --allow-retired CSALT-CD/MAPS "$tmp/gone.json"
grep -q 'retired' "$tmp/last.out" \
    || { echo "FAIL: allowed retirement not reported"; exit 1; }
# The geomean is recomputed over the config intersection (here the
# one surviving scheme), never copied from the files' own aggregates.
grep -Eq 'geomean/MAPS \(1 cfgs\).*ok' "$tmp/last.out" \
    || { echo "FAIL: no intersection geomean row"; exit 1; }
echo "ok: bench_report gate"

echo "OK"
