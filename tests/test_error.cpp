/**
 * @file
 * Tests for the typed error layer (common/error.h): kind names,
 * renderings, the CsaltError exception bridge, Expected/Status, and
 * the cooperative cancellation plumbing (common/progress.h) the
 * watchdog relies on.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/error.h"
#include "common/progress.h"

using namespace csalt;

TEST(Error, KindNamesAreStable)
{
    EXPECT_STREQ(errorKindName(ErrorKind::config), "config");
    EXPECT_STREQ(errorKindName(ErrorKind::usage), "usage");
    EXPECT_STREQ(errorKindName(ErrorKind::io), "io");
    EXPECT_STREQ(errorKindName(ErrorKind::parse), "parse");
    EXPECT_STREQ(errorKindName(ErrorKind::build), "build");
    EXPECT_STREQ(errorKindName(ErrorKind::timeout), "timeout");
    EXPECT_STREQ(errorKindName(ErrorKind::cancelled), "cancelled");
    EXPECT_STREQ(errorKindName(ErrorKind::invariant), "invariant");
    EXPECT_STREQ(errorKindName(ErrorKind::internal), "internal");
}

TEST(Error, MakeErrorCapturesTheCallSite)
{
    const Error err = makeError(ErrorKind::io, "msg");
    EXPECT_NE(std::string(err.where.file_name()).find("test_error"),
              std::string::npos);
}

TEST(Error, OneLineRendersEveryField)
{
    const Error err = makeError(ErrorKind::parse, "bad record",
                                "trace.txt", "re-record it");
    const std::string line = oneLine(err);
    EXPECT_NE(line.find("error[parse]"), std::string::npos) << line;
    EXPECT_NE(line.find("trace.txt"), std::string::npos);
    EXPECT_NE(line.find("bad record"), std::string::npos);
    EXPECT_NE(line.find("re-record it"), std::string::npos);
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "oneLine must stay one line";
}

TEST(Error, DescribeIsMultiLineWithWhereAndHint)
{
    const Error err = makeError(ErrorKind::config, "bad ways", "L2",
                                "use a power of two");
    const std::string text = describe(err);
    EXPECT_NE(text.find("where:"), std::string::npos) << text;
    EXPECT_NE(text.find("hint:"), std::string::npos);
    EXPECT_NE(text.find("test_error"), std::string::npos) << text;
}

TEST(Error, RaiseThrowsCsaltErrorWithOneLineWhat)
{
    try {
        raise(makeError(ErrorKind::build, "no vms", "spec"));
        FAIL() << "raise must throw";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::build);
        EXPECT_EQ(std::string(e.what()), oneLine(e.error()));
    }
}

TEST(Expected, ValueAndErrorPaths)
{
    Expected<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);
    EXPECT_EQ(std::move(good).valueOrRaise(), 7);

    Expected<int> bad(makeError(ErrorKind::parse, "nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().kind, ErrorKind::parse);
    EXPECT_THROW(std::move(bad).valueOrRaise(), CsaltError);
}

TEST(Status, OkAndErrorPaths)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    std::move(ok).okOrRaise(); // must not throw

    Status bad(makeError(ErrorKind::io, "disk gone"));
    EXPECT_FALSE(bad.ok());
    EXPECT_THROW(std::move(bad).okOrRaise(), CsaltError);
}

TEST(Progress, TokenTicksAndCancels)
{
    ProgressToken token;
    EXPECT_EQ(token.ticks(), 0u);
    token.tick(4096);
    token.tick();
    EXPECT_EQ(token.ticks(), 4097u);
    EXPECT_FALSE(token.cancelled());
    token.requestCancel("hard timeout after 1s");
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.cancelReason(), "hard timeout after 1s");
}

TEST(Progress, ThreadLocalTokenInstallAndClear)
{
    EXPECT_EQ(progressToken(), nullptr);
    progressTick(); // no token installed: must be a harmless no-op
    EXPECT_FALSE(progressCancelled());

    ProgressToken token;
    setProgressToken(&token);
    progressTick(10);
    EXPECT_EQ(token.ticks(), 10u);

    // The token is thread-local: another thread sees none.
    std::thread([] { EXPECT_EQ(progressToken(), nullptr); }).join();

    token.requestCancel("stalled");
    EXPECT_TRUE(progressCancelled());
    try {
        raiseCancelled();
        FAIL() << "raiseCancelled must throw";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::timeout);
        EXPECT_NE(std::string(e.what()).find("stalled"),
                  std::string::npos)
            << e.what();
    }
    setProgressToken(nullptr);
    EXPECT_FALSE(progressCancelled());
}
