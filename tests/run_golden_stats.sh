#!/usr/bin/env bash
# Golden-stats regression gate: the SoA/devirtualized hot path must
# change ZERO model behavior. Re-runs six pinned-seed csalt-sim
# configs (chosen to cover CSALT-CD partitioning, POM multi-core,
# DIP-over-POM native, TSB 5-level walks, Victima cache-resident
# entries, and the PCAX predictor) and byte-compares the
# metrics JSON against goldens committed from the pre-refactor
# simulator. Any intentional model change must regenerate the goldens
# with the commands below and say so in the commit message.
#
# Also re-asserts --jobs 1 vs --jobs 4 stdout identity on a reduced
# fig07 grid (cells are shared-nothing; parallelism must never leak
# into results).
#
# Usage: run_golden_stats.sh <csalt-sim> <fig07_performance> <golden-dir>
set -euo pipefail

SIM="$1"
FIG07="$2"
GOLDEN="$3"

tmp="$(mktemp -d /tmp/csalt-golden-XXXXXX)"
trap 'rm -rf "$tmp"' EXIT

# Defensive: strip a wall_clock field if one is ever added to the
# metrics JSON, so the gate keeps comparing only simulated results.
strip_wall() {
    sed -E 's/,?"wall_clock[^,}]*//g' "$1"
}

check() {
    local name="$1"
    shift
    "$SIM" "$@" --format json > "$tmp/$name"
    if ! cmp -s <(strip_wall "$GOLDEN/$name") <(strip_wall "$tmp/$name"); then
        echo "FAIL: $name diverged from golden ($SIM $*)"
        diff <(strip_wall "$GOLDEN/$name") <(strip_wall "$tmp/$name") | head -20
        exit 1
    fi
    echo "ok: $name byte-identical"
}

check csalt_cd_ccomp.json \
    --pair ccomp --scheme csalt-cd --quota 60000 --warmup 20000 --seed 7

# Observability must be free: the same config re-run with the phase
# profiler armed AND a live-export region attached must produce the
# exact same simulated results — only the (host-dependent)
# self_profile section may differ.
CSALT_SELF_PROFILE=1 CSALT_LIVE_EXPORT="$tmp/golden.live" \
    "$SIM" --pair ccomp --scheme csalt-cd --quota 60000 \
    --warmup 20000 --seed 7 --format json > "$tmp/obs_on.json"
python3 - "$GOLDEN/csalt_cd_ccomp.json" "$tmp/obs_on.json" <<'EOF'
import json, sys
plain, obs = (json.load(open(p)) for p in sys.argv[1:3])
assert obs.pop("self_profile", None), \
    "CSALT_SELF_PROFILE=1 produced no self_profile section"
plain.pop("self_profile", None)
assert plain == obs, \
    "profiler/live export changed simulated results"
print("ok: obs-enabled run identical (minus self_profile)")
EOF
test -s "$tmp/golden.live" \
    || { echo "FAIL: no live region written"; exit 1; }

# Span tracing must be free too: the same config with --span-trace
# armed (sampling every 16th access) must keep the simulated metrics
# byte-identical — the journeys live only in the sidecar and the
# span_summary section — and the sidecar must be non-empty.
"$SIM" --pair ccomp --scheme csalt-cd --quota 60000 \
    --warmup 20000 --seed 7 --span-trace "$tmp/golden.spans" \
    --span-rate 16 --format json > "$tmp/spans_on.json" 2>/dev/null
python3 - "$GOLDEN/csalt_cd_ccomp.json" "$tmp/spans_on.json" <<'EOF'
import json, sys
plain, spans = (json.load(open(p)) for p in sys.argv[1:3])
summary = spans.pop("span_summary", None)
assert summary, "--span-trace produced no span_summary section"
assert summary["sampled"] > 0, "span trace sampled nothing"
plain.pop("self_profile", None)
spans.pop("self_profile", None)
assert plain == spans, "span tracing changed simulated results"
print("ok: span-traced run identical (minus span_summary)")
EOF
test -s "$tmp/golden.spans" \
    || { echo "FAIL: no span sidecar written"; exit 1; }

# Checkpointing must be free as well: the same config re-run with
# periodic epoch-boundary checkpoints armed must keep the metrics
# JSON byte-identical — the snapshots live only on disk, and the
# checkpoint hook fires strictly between simulation events.
"$SIM" --pair ccomp --scheme csalt-cd --quota 60000 \
    --warmup 20000 --seed 7 --checkpoint-out "$tmp/golden.ckpt" \
    --checkpoint-every 1 --format json > "$tmp/ckpt_on.json"
if ! cmp -s <(strip_wall "$GOLDEN/csalt_cd_ccomp.json") \
            <(strip_wall "$tmp/ckpt_on.json"); then
    echo "FAIL: --checkpoint-every changed simulated results"
    diff <(strip_wall "$GOLDEN/csalt_cd_ccomp.json") \
         <(strip_wall "$tmp/ckpt_on.json") | head -20
    exit 1
fi
test -s "$tmp/golden.ckpt" \
    || { echo "FAIL: no checkpoint written"; exit 1; }
echo "ok: checkpoint-armed run identical"

check pom_gups_pagerank.json \
    --vm gups --vm pagerank --scheme pom --cores 4 --quota 60000 \
    --warmup 20000 --seed 9
check dip_streamcluster_native.json \
    --pair streamcluster --scheme dip --quota 40000 --warmup 10000 \
    --native --seed 11
check tsb_graph500_5lvl.json \
    --vm graph500 --scheme tsb --quota 40000 --warmup 10000 \
    --five-level --seed 13
check victima_gups_canneal.json \
    --vm gups --vm canneal --scheme victima --quota 40000 \
    --warmup 10000 --seed 17
check pcax_pagerank.json \
    --pair pagerank --scheme pcax --quota 40000 --warmup 10000 \
    --seed 19

export CSALT_QUOTA=20000 CSALT_WARMUP=5000
CSALT_BENCH_JSON="$tmp/j1.json" "$FIG07" --jobs 1 > "$tmp/out1"
CSALT_BENCH_JSON="$tmp/j4.json" "$FIG07" --jobs 4 > "$tmp/out4" 2>/dev/null
if ! cmp -s "$tmp/out1" "$tmp/out4"; then
    echo "FAIL: fig07 --jobs 1 vs --jobs 4 stdout differ"
    diff "$tmp/out1" "$tmp/out4" | head -20
    exit 1
fi
echo "ok: fig07 stdout identical at --jobs 1 and --jobs 4"
echo "OK"
