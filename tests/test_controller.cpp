/**
 * @file
 * Tests for the epoch-driven partition controller (paper Fig. 6):
 * epoch triggering, marginal-utility application, the negligible-
 * traffic guard, static mode, and the Fig. 9 partition trace.
 */

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "common/rng.h"
#include "core/csalt_controller.h"

using namespace csalt;

namespace
{

CacheParams
cacheParams(unsigned ways = 8, std::uint64_t sets = 16)
{
    CacheParams p;
    p.name = "ctl-test";
    p.ways = ways;
    p.size_bytes = sets * ways * kLineSize;
    return p;
}

PartitionParams
dynParams(PartitionPolicy policy, std::uint64_t epoch = 64)
{
    PartitionParams p;
    p.policy = policy;
    p.epoch_accesses = epoch;
    p.min_ways_per_type = 1;
    return p;
}

/** Drive accesses whose types/tags make data clearly hotter. */
void
driveDataHeavy(Cache &cache, int rounds)
{
    Rng rng(3);
    for (int i = 0; i < rounds; ++i) {
        // Data: heavy reuse over few lines; translation: rare stream.
        cache.access((rng.below(32)) << kLineShift, AccessType::read,
                     LineType::data);
        if (i % 16 == 0) {
            cache.access((100000 + static_cast<Addr>(i))
                             << kLineShift,
                         AccessType::read, LineType::translation);
        }
    }
}

} // namespace

TEST(Controller, NonePolicyLeavesCacheUnpartitioned)
{
    Cache cache(cacheParams());
    PartitionController ctl(cache, dynParams(PartitionPolicy::none),
                            nullptr);
    for (int i = 0; i < 1000; ++i)
        ctl.onAccess();
    EXPECT_FALSE(cache.partitioned());
    EXPECT_EQ(ctl.epochsCompleted(), 0u);
}

TEST(Controller, StaticHalfSplitsEvenly)
{
    Cache cache(cacheParams(8));
    PartitionController ctl(cache,
                            dynParams(PartitionPolicy::staticHalf),
                            nullptr);
    EXPECT_TRUE(cache.partitioned());
    EXPECT_EQ(cache.dataWays(), 4u);
}

TEST(Controller, StaticConfigurableWays)
{
    Cache cache(cacheParams(8));
    auto params = dynParams(PartitionPolicy::staticHalf);
    params.static_data_ways = 6;
    PartitionController ctl(cache, params, nullptr);
    EXPECT_EQ(cache.dataWays(), 6u);
}

TEST(Controller, EpochBoundaryTriggersRepartition)
{
    Cache cache(cacheParams());
    PartitionController ctl(cache, dynParams(PartitionPolicy::csaltD),
                            nullptr);
    EXPECT_TRUE(cache.profiling());

    for (int i = 0; i < 63; ++i)
        ctl.onAccess();
    EXPECT_EQ(ctl.epochsCompleted(), 0u);
    ctl.onAccess();
    EXPECT_EQ(ctl.epochsCompleted(), 1u);
    for (int i = 0; i < 128; ++i)
        ctl.onAccess();
    EXPECT_EQ(ctl.epochsCompleted(), 3u);
}

TEST(Controller, RepartitionAppliesArgmax)
{
    Cache cache(cacheParams(8));
    PartitionController ctl(cache, dynParams(PartitionPolicy::csaltD),
                            nullptr);

    // Craft profiler contents with a known argmax (Figure 5: N=5).
    cache.dataProfiler().setCounters({3, 11, 12, 8, 9, 2, 1, 4, 10});
    cache.tlbProfiler().setCounters({7, 10, 12, 5, 1, 0, 8, 15, 1});
    ctl.repartition();
    EXPECT_EQ(cache.dataWays(), 5u);

    // Profilers reset for the next epoch.
    EXPECT_EQ(cache.dataProfiler().total(), 0u);
    EXPECT_EQ(cache.tlbProfiler().total(), 0u);
}

TEST(Controller, NegligibleTranslationTrafficGetsMinimum)
{
    Cache cache(cacheParams(8));
    PartitionController ctl(cache, dynParams(PartitionPolicy::csaltD),
                            nullptr);
    // 1000 data accesses, 2 translation accesses (0.2% < 2% guard).
    std::vector<std::uint64_t> d(9, 0);
    d[0] = 1000;
    cache.dataProfiler().setCounters(d);
    std::vector<std::uint64_t> t(9, 0);
    t[0] = 2;
    cache.tlbProfiler().setCounters(t);
    ctl.repartition();
    EXPECT_EQ(cache.dataWays(), 7u);
}

TEST(Controller, NegligibleDataTrafficGetsMinimum)
{
    Cache cache(cacheParams(8));
    PartitionController ctl(cache, dynParams(PartitionPolicy::csaltD),
                            nullptr);
    std::vector<std::uint64_t> d(9, 0);
    d[0] = 2;
    cache.dataProfiler().setCounters(d);
    std::vector<std::uint64_t> t(9, 0);
    t[0] = 1000;
    cache.tlbProfiler().setCounters(t);
    ctl.repartition();
    EXPECT_EQ(cache.dataWays(), 1u);
}

TEST(Controller, TraceRecordsEachEpoch)
{
    Cache cache(cacheParams());
    PartitionController ctl(cache, dynParams(PartitionPolicy::csaltD),
                            nullptr);
    driveDataHeavy(cache, 10);
    ctl.repartition();
    ctl.repartition();
    EXPECT_EQ(ctl.partitionTrace().points().size(), 2u);
    ctl.clearTrace();
    EXPECT_TRUE(ctl.partitionTrace().empty());
}

TEST(Controller, CsaltCdUsesWeights)
{
    Cache cache(cacheParams(8));
    CriticalityEstimator est(42);
    // Make translation hits enormously valuable.
    est.recordPomLatency(4200);
    est.recordPomOutcome(false);
    est.recordWalkLatency(42000);
    est.recordDramLatency(42); // s_dat = 1

    PartitionController ctl(cache, dynParams(PartitionPolicy::csaltCD),
                            &est);

    // Symmetric profiles: CSALT-D would tie-break toward data; the
    // weights must pull the split toward translation.
    std::vector<std::uint64_t> flat = {5, 5, 5, 5, 5, 5, 5, 5, 0};
    cache.dataProfiler().setCounters(flat);
    cache.tlbProfiler().setCounters(flat);
    ctl.repartition();
    EXPECT_EQ(cache.dataWays(), 1u);
    EXPECT_GT(ctl.lastWeights().s_tr, ctl.lastWeights().s_dat);
}

TEST(Controller, CsaltCdRequiresEstimator)
{
    Cache cache(cacheParams());
    EXPECT_EXIT(PartitionController(
                    cache, dynParams(PartitionPolicy::csaltCD), nullptr),
                ::testing::ExitedWithCode(1), "criticality");
}
