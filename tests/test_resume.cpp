/**
 * @file
 * Checkpoint/resume round-trip tests: a grid interrupted mid-run
 * (journal cut short + torn tail, the exact on-disk state a SIGKILL
 * leaves) and resumed with --resume must produce results and output
 * byte-identical to an uninterrupted run, at any worker count, with
 * the finished cells replayed from the journal instead of
 * re-simulated. scripts/check.sh repeats this end-to-end with a real
 * SIGKILL against the sweep binary.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness/job_runner.h"
#include "harness/results.h"
#include "sim/metrics_io.h"
#include "sim/system_builder.h"
#include "workloads/registry.h"

using namespace csalt;
using namespace csalt::harness;

namespace
{

struct Cell
{
    const char *workload;
    const char *scheme;
    void (*apply)(SystemParams &);
};

const std::vector<Cell> kGrid = {
    {"gups", "pom", applyPomTlb},
    {"gups", "csCD", applyCsaltCD},
    {"ccomp", "pom", applyPomTlb},
    {"ccomp", "csCD", applyCsaltCD},
};

/** One reduced simulation cell, as the tools run them. */
RunMetrics
simulate(const Cell &cell)
{
    BuildSpec spec;
    cell.apply(spec.params);
    const PairSpec pair = resolvePair(cell.workload);
    spec.vm_workloads = {pair.vm1, pair.vm2};
    auto system = buildSystem(spec);
    system->run(1000);
    system->clearAllStats();
    system->run(5000);
    return collectMetrics(*system);
}

std::string
keyOf(const Cell &cell)
{
    return std::string(cell.workload) + "/" + cell.scheme;
}

/**
 * Run the grid's first @p n_cells cells through @p runner, counting
 * real executions and recording the ordered stdout-like rows (no
 * wall clock in the rows, as in the real tools).
 */
struct GridRun
{
    std::vector<JobOutcome<RunMetrics>> outcomes;
    std::string rows;
    int executed = 0;
};

GridRun
runGrid(const RunnerOptions &opts, Journal *journal,
        std::size_t n_cells = kGrid.size())
{
    GridRun result;
    std::atomic<int> executed{0};
    JobRunner<RunMetrics> runner(opts);
    if (journal)
        runner.attachJournal(journal, metricsJournalCodec());
    for (std::size_t i = 0; i < n_cells; ++i) {
        const Cell cell = kGrid[i];
        runner.add(keyOf(cell), [cell, &executed] {
            ++executed;
            return simulate(cell);
        });
    }
    runner.setOrderedCallback(
        [&](std::size_t, const JobOutcome<RunMetrics> &o) {
            result.rows += o.key + " ipc " +
                           std::to_string(o.value->ipc_geomean) +
                           "\n";
        });
    result.outcomes = runner.run();
    result.executed = executed.load();
    return result;
}

std::string
tmpJournal(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** The torn tail a SIGKILL mid-append leaves at the journal's end. */
void
tearJournalTail(const std::string &path)
{
    std::ofstream out(path, std::ios::app);
    out << "{\"crc\":\"12345678\",\"body\":{\"key\":\"half-writ";
}

std::unique_ptr<Journal>
openJournal(const std::string &path, bool fresh)
{
    auto journal = Journal::open(path, "resume-test:v1", fresh);
    EXPECT_TRUE(journal.ok());
    return std::move(journal).take();
}

} // namespace

TEST(Resume, KillAndResumeRoundTripIsByteIdentical)
{
    // Reference: the uninterrupted run.
    RunnerOptions plain;
    const GridRun reference = runGrid(plain, nullptr);
    ASSERT_EQ(reference.executed, 4);
    const std::string reference_json =
        jobsJson(reference.outcomes, /*include_wall=*/false);

    for (const unsigned jobs : {1u, 4u}) {
        const std::string path = tmpJournal(
            "resume_rt_" + std::to_string(jobs) + ".jsonl");

        // "Killed" run: only 2 of 4 cells finished, then a torn
        // tail from the append that was in flight at the kill.
        {
            RunnerOptions first;
            first.jobs = jobs;
            auto journal = openJournal(path, /*fresh=*/true);
            const GridRun partial =
                runGrid(first, journal.get(), 2);
            ASSERT_EQ(partial.executed, 2);
        }
        tearJournalTail(path);

        // Resumed run: full grid, finished cells replay from the
        // journal, the rest simulate.
        RunnerOptions second;
        second.jobs = jobs;
        second.resume = true;
        auto journal = openJournal(path, /*fresh=*/false);
        EXPECT_EQ(journal->loadedCount(), 2u);
        const GridRun resumed = runGrid(second, journal.get());

        EXPECT_EQ(resumed.executed, 2)
            << "journaled cells must not re-simulate";
        ASSERT_EQ(resumed.outcomes.size(), reference.outcomes.size());
        for (std::size_t i = 0; i < resumed.outcomes.size(); ++i) {
            ASSERT_TRUE(resumed.outcomes[i].ok)
                << resumed.outcomes[i].error;
            EXPECT_EQ(resumed.outcomes[i].from_journal, i < 2);
            // Bit-identical metrics through the journal round-trip.
            EXPECT_EQ(metricsJson(resumed.outcomes[i].key,
                                  *resumed.outcomes[i].value),
                      metricsJson(reference.outcomes[i].key,
                                  *reference.outcomes[i].value))
                << resumed.outcomes[i].key;
        }
        // The stdout rows and the results document (minus wall
        // clock) are byte-identical to the uninterrupted run.
        EXPECT_EQ(resumed.rows, reference.rows);
        EXPECT_EQ(jobsJson(resumed.outcomes, /*include_wall=*/false),
                  reference_json);
        std::remove(path.c_str());
    }
}

TEST(Resume, WithoutResumeFlagEverythingReruns)
{
    const std::string path = tmpJournal("resume_noflag.jsonl");
    {
        auto journal = openJournal(path, /*fresh=*/true);
        RunnerOptions opts;
        runGrid(opts, journal.get(), 2);
    }
    // Journal attached but resume not requested: all cells execute.
    auto journal = openJournal(path, /*fresh=*/false);
    RunnerOptions opts;
    const GridRun rerun = runGrid(opts, journal.get());
    EXPECT_EQ(rerun.executed, 4);
    for (const auto &o : rerun.outcomes)
        EXPECT_FALSE(o.from_journal);
    std::remove(path.c_str());
}

TEST(Resume, FailedJournalRecordsRerun)
{
    const std::string path = tmpJournal("resume_failed.jsonl");
    {
        auto journal = openJournal(path, /*fresh=*/true);
        JournalRecord rec;
        rec.key = keyOf(kGrid[0]);
        rec.ok = false;
        rec.error = "timed out";
        rec.error_kind = "timeout";
        ASSERT_TRUE(journal->append(rec).ok());
    }
    auto journal = openJournal(path, /*fresh=*/false);
    RunnerOptions opts;
    opts.resume = true;
    const GridRun rerun = runGrid(opts, journal.get(), 1);
    // A failed record is not a checkpoint: the cell runs again.
    EXPECT_EQ(rerun.executed, 1);
    ASSERT_TRUE(rerun.outcomes[0].ok);
    EXPECT_FALSE(rerun.outcomes[0].from_journal);
    std::remove(path.c_str());
}

TEST(Resume, FullyJournaledGridRunsNothing)
{
    const std::string path = tmpJournal("resume_full.jsonl");
    std::string first_rows;
    {
        auto journal = openJournal(path, /*fresh=*/true);
        RunnerOptions opts;
        opts.jobs = 4;
        first_rows = runGrid(opts, journal.get()).rows;
    }
    auto journal = openJournal(path, /*fresh=*/false);
    RunnerOptions opts;
    opts.resume = true;
    opts.jobs = 4;
    const GridRun replay = runGrid(opts, journal.get());
    EXPECT_EQ(replay.executed, 0);
    EXPECT_EQ(replay.rows, first_rows);
    std::remove(path.c_str());
}
