/**
 * @file
 * Property sweeps over the POM-TLB: randomized insert/probe streams
 * across ASIDs and page sizes, checked against an exact reference map
 * bounded by set capacity.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.h"
#include "tlb/pom_tlb.h"

using namespace csalt;

namespace
{

struct SweepCase
{
    std::uint64_t size_bytes;
    unsigned asids;
    double huge_share;
};

class PomSweep : public ::testing::TestWithParam<SweepCase>
{
};

} // namespace

TEST_P(PomSweep, InsertedEntriesProbeBackUntilEvicted)
{
    const auto param = GetParam();
    PomTlbParams pp;
    pp.size_bytes = param.size_bytes;
    PomTlb pom(pp, 0x40000000);
    Rng rng(31);

    using Key = std::tuple<Asid, Vpn, PageSize>;
    std::map<Key, Addr> inserted;

    for (int i = 0; i < 20000; ++i) {
        const Asid asid =
            static_cast<Asid>(1 + rng.below(param.asids));
        const PageSize ps = rng.chance(param.huge_share)
                                ? PageSize::size2M
                                : PageSize::size4K;
        const Vpn vpn = rng.below(1 << 16);
        const Addr gva = vpn << pageShift(ps);
        const Addr frame = (vpn + 7) << pageShift(ps);

        pom.insert(asid, gva, {frame, ps});
        inserted[{asid, vpn, ps}] = frame;

        // An immediate probe must hit with the right frame.
        const auto probe = pom.probe(asid, gva, ps);
        ASSERT_TRUE(probe.hit) << "iteration " << i;
        ASSERT_EQ(probe.mapping.frame, frame);
        ASSERT_EQ(probe.mapping.ps, ps);

        // Line addresses stay inside the POM range.
        ASSERT_GE(probe.line_addr, 0x40000000u);
        ASSERT_LT(probe.line_addr, 0x40000000u + param.size_bytes);
    }

    // Every key either probes back with its exact frame or was
    // legitimately evicted (never a wrong frame).
    std::uint64_t survivors = 0;
    for (const auto &[key, frame] : inserted) {
        const auto [asid, vpn, ps] = key;
        const auto probe = pom.probe(asid, vpn << pageShift(ps), ps);
        if (probe.hit) {
            ASSERT_EQ(probe.mapping.frame, frame);
            ++survivors;
        }
    }
    // Survivors cannot exceed capacity.
    EXPECT_LE(survivors, param.size_bytes / 16);
    EXPECT_GT(survivors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PomSweep,
    ::testing::Values(SweepCase{16 * 1024, 1, 0.0},
                      SweepCase{64 * 1024, 4, 0.3},
                      SweepCase{256 * 1024, 2, 0.5},
                      SweepCase{16 * 1024, 8, 0.2}));

TEST(PomProperties, StatsBalance)
{
    PomTlbParams pp;
    pp.size_bytes = 64 * 1024;
    PomTlb pom(pp, 0x40000000);
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        const Vpn vpn = rng.below(4096);
        const Addr gva = vpn << kPageShift;
        if (!pom.probe(1, gva, PageSize::size4K).hit)
            pom.insert(1, gva, {vpn << kPageShift, PageSize::size4K});
    }
    const auto &stats = pom.stats();
    EXPECT_EQ(stats.hits + stats.misses, 5000u);
    EXPECT_EQ(stats.inserts, stats.misses);
}
