/**
 * @file
 * Statistical signature tests for the workload generators: each
 * generator exists to reproduce a specific memory-system behaviour
 * from the paper (DESIGN.md §2), so these tests pin the *shape* of
 * the streams — page-level reach, line locality, skew, phases —
 * rather than exact values.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "workloads/generators.h"

using namespace csalt;

namespace
{

struct Profile
{
    std::uint64_t refs = 0;
    std::uint64_t pages = 0;       //!< distinct 4KB pages
    std::uint64_t lines = 0;       //!< distinct 64B lines
    double seq_fraction = 0.0;     //!< refs at +8B from predecessor
    double top_page_share = 0.0;   //!< share of refs on hottest 1%
};

Profile
profileOf(TraceSource &src, int refs)
{
    Profile p;
    p.refs = refs;
    std::unordered_set<Addr> lines;
    std::unordered_map<Vpn, std::uint64_t> page_counts;
    Addr prev = ~Addr{0};
    std::uint64_t seq = 0;
    for (int i = 0; i < refs; ++i) {
        const TraceRecord rec = src.next();
        lines.insert(rec.vaddr >> kLineShift);
        ++page_counts[rec.vaddr >> kPageShift];
        if (rec.vaddr == prev + 8)
            ++seq;
        prev = rec.vaddr;
    }
    p.pages = page_counts.size();
    p.lines = lines.size();
    p.seq_fraction = static_cast<double>(seq) / refs;

    std::vector<std::uint64_t> counts;
    counts.reserve(page_counts.size());
    for (const auto &[vpn, n] : page_counts)
        counts.push_back(n);
    std::sort(counts.rbegin(), counts.rend());
    const std::size_t top = std::max<std::size_t>(
        1, counts.size() / 100);
    std::uint64_t head = 0;
    for (std::size_t i = 0; i < top; ++i)
        head += counts[i];
    p.top_page_share = static_cast<double>(head) / refs;
    return p;
}

constexpr int kRefs = 200'000;

} // namespace

TEST(WorkloadSignatures, GupsIsUniformAndPageHostile)
{
    auto src = makeGups(1, 0, 8, 0.1);
    const Profile p = profileOf(*src, kRefs);
    // Two refs per random location: pages touched ~ refs/2 until the
    // table saturates; essentially no sequentiality, no skew.
    EXPECT_GT(p.pages, static_cast<std::uint64_t>(kRefs) / 8);
    EXPECT_LT(p.seq_fraction, 0.05);
    EXPECT_LT(p.top_page_share, 0.05);
}

TEST(WorkloadSignatures, StreamclusterIsSequential)
{
    auto src = makeStreamcluster(1, 0, 8, 1.0);
    const Profile p = profileOf(*src, kRefs);
    // Dominated by the sequential pass.
    EXPECT_GT(p.seq_fraction, 0.8);
    // Page reach is modest: a few thousand, not tens of thousands.
    EXPECT_LT(p.pages, 25'000u);
}

TEST(WorkloadSignatures, PagerankIsSkewed)
{
    auto src = makePagerank(1, 0, 8, 1.0);
    const Profile p = profileOf(*src, kRefs);
    // The drifting active window concentrates vertex traffic: the
    // hottest 1% of pages carry far more than their uniform share.
    EXPECT_GT(p.top_page_share, 0.08);
    // The edge stream keeps a solid sequential component.
    EXPECT_GT(p.seq_fraction, 0.2);
    // The active window is TLB-reach-sized: half the vertex traffic
    // fits in ~2K pages (CS-evictable reuse, paper Fig. 1).
    EXPECT_LT(p.pages, src->footprintPages());
}

TEST(WorkloadSignatures, CannealHasLineLocalityWithoutSequentiality)
{
    auto src = makeCanneal(1, 0, 8, 1.0);
    const Profile p = profileOf(*src, kRefs);
    // Bursts revisit a small neighbourhood: many refs per line...
    EXPECT_LT(p.lines, static_cast<std::uint64_t>(kRefs) / 2);
    // ...but not as a sequential stream.
    EXPECT_LT(p.seq_fraction, 0.2);
    // Footprint stays within the configured hot/total page budget.
    EXPECT_LE(p.pages, src->footprintPages());
}

TEST(WorkloadSignatures, CcompAlternatesPhases)
{
    auto src = makeCcomp(1, 0, 8, 1.0);
    // Phase length is 40K refs (expansion runs 3 phases, compaction
    // 1): windows of 20K refs must show both translation-hostile
    // (many pages, low seq) and sweep (high seq) behaviour.
    double max_seq = 0.0;
    double min_seq = 1.0;
    for (int window = 0; window < 12; ++window) {
        const Profile p = profileOf(*src, 20'000);
        max_seq = std::max(max_seq, p.seq_fraction);
        min_seq = std::min(min_seq, p.seq_fraction);
    }
    EXPECT_GT(max_seq, 0.4); // compaction sweeps
    EXPECT_LT(min_seq, 0.1); // expansion scatter
}

TEST(WorkloadSignatures, CcompExpansionOutreachesTheTlb)
{
    auto src = makeCcomp(1, 0, 8, 1.0);
    const Profile p = profileOf(*src, 60'000); // inside expansion
    // Far more distinct pages than the 1536-entry L2 TLB holds.
    EXPECT_GT(p.pages, 5'000u);
}

TEST(WorkloadSignatures, Graph500MixesScanAndProbe)
{
    auto src = makeGraph500(1, 0, 8, 1.0);
    const Profile p = profileOf(*src, kRefs);
    EXPECT_GT(p.seq_fraction, 0.2);  // frontier scans
    EXPECT_GT(p.pages, 2'000u);      // probe reach
    EXPECT_GT(p.top_page_share, 0.05); // hub skew
}
