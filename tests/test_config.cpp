/**
 * @file
 * Tests for the configuration defaults (paper Table 2) and the
 * validation rules.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/config.h"
#include "common/error.h"

using namespace csalt;

namespace
{

/** validate() must raise kind=config mentioning @p needle. */
void
expectConfigError(const SystemParams &p, const std::string &needle)
{
    try {
        validate(p);
        ADD_FAILURE() << "expected a config error mentioning '"
                      << needle << "'";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::config) << e.what();
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << e.what();
    }
}

} // namespace

TEST(Config, PaperTable2Defaults)
{
    const SystemParams p = defaultParams();
    EXPECT_EQ(p.num_cores, 8u);
    EXPECT_EQ(p.l1d.size_bytes, 32ull << 10);
    EXPECT_EQ(p.l1d.ways, 8u);
    EXPECT_EQ(p.l1d.latency, 4u);
    EXPECT_EQ(p.l2.size_bytes, 256ull << 10);
    EXPECT_EQ(p.l2.ways, 4u);
    EXPECT_EQ(p.l2.latency, 12u);
    EXPECT_EQ(p.l3.size_bytes, 8ull << 20);
    EXPECT_EQ(p.l3.ways, 16u);
    EXPECT_EQ(p.l3.latency, 42u);
    EXPECT_EQ(p.l1tlb_4k.entries, 64u);
    EXPECT_EQ(p.l1tlb_2m.entries, 32u);
    EXPECT_EQ(p.l2tlb.entries, 1536u);
    EXPECT_EQ(p.l2tlb.ways, 12u);
    EXPECT_EQ(p.l2tlb.latency, 17u);
    EXPECT_EQ(p.psc.pml4e_entries, 2u);
    EXPECT_EQ(p.psc.pdpe_entries, 4u);
    EXPECT_EQ(p.psc.pde_entries, 32u);
    EXPECT_EQ(p.pom.size_bytes, 16ull << 20);
    EXPECT_EQ(p.page_table_levels, 4);
    EXPECT_TRUE(p.virtualized);
}

TEST(Config, CacheGeometryHelpers)
{
    const SystemParams p = defaultParams();
    EXPECT_EQ(p.l1d.numLines(), 512u);
    EXPECT_EQ(p.l1d.numSets(), 64u);
    EXPECT_EQ(p.l3.numSets(), 8192u);
}

TEST(Config, TimeScalingPreservesRatios)
{
    // 5:10:30 ms must stay 1:2:6 after scaling (paper Fig. 16).
    const Cycles five = 5 * kCyclesPerPaperMs;
    const Cycles ten = 10 * kCyclesPerPaperMs;
    const Cycles thirty = 30 * kCyclesPerPaperMs;
    EXPECT_EQ(ten, 2 * five);
    EXPECT_EQ(thirty, 6 * five);
    // Epoch scaling preserves 128K:256K:512K ~ 1:2:4 (integer
    // division of 128K/100 truncates by at most one access).
    EXPECT_NEAR(static_cast<double>(scaledEpoch(256 * 1024)),
                2.0 * scaledEpoch(128 * 1024), 2.0);
    EXPECT_NEAR(static_cast<double>(scaledEpoch(512 * 1024)),
                4.0 * scaledEpoch(128 * 1024), 4.0);
}

TEST(Config, DefaultsValidate)
{
    SystemParams p = defaultParams();
    validate(p); // must not exit
    p.l2_partition.policy = PartitionPolicy::csaltCD;
    p.l3_partition.policy = PartitionPolicy::csaltCD;
    validate(p);
    SUCCEED();
}

TEST(Config, Names)
{
    EXPECT_STREQ(partitionPolicyName(PartitionPolicy::csaltD),
                 "CSALT-D");
    EXPECT_STREQ(partitionPolicyName(PartitionPolicy::csaltCD),
                 "CSALT-CD");
    EXPECT_STREQ(partitionPolicyName(PartitionPolicy::none), "none");
    EXPECT_STREQ(translationKindName(TranslationKind::pomTlb),
                 "POM-TLB");
    EXPECT_STREQ(translationKindName(TranslationKind::tsb), "TSB");
}

TEST(Config, ValidationCatchesBadGeometry)
{
    SystemParams p = defaultParams();
    p.l1d.size_bytes = 0;
    expectConfigError(p, "zero");

    p = defaultParams();
    p.l2tlb.entries = 1000; // 1000/12 not a power-of-two set count
    expectConfigError(p, "TLB");

    p = defaultParams();
    p.num_cores = 0;
    expectConfigError(p, "num_cores");

    p = defaultParams();
    p.page_table_levels = 6;
    expectConfigError(p, "page_table_levels");

    p = defaultParams();
    p.huge_page_fraction = 1.5;
    expectConfigError(p, "huge_page_fraction");

    p = defaultParams();
    p.pom.ways = 8; // 8 * 16B != 64B line
    expectConfigError(p, "POM");

    p = defaultParams();
    p.l2_partition.policy = PartitionPolicy::csaltD;
    p.l2_partition.min_ways_per_type = 3; // 2*3 > 4 ways
    expectConfigError(p, "min ways");
}

TEST(Config, ValidationErrorsCarryHints)
{
    SystemParams p = defaultParams();
    p.l2.size_bytes = (256ull << 10) + 64; // not divisible by ways
    try {
        validate(p);
        FAIL() << "expected a config error";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::config);
        EXPECT_EQ(e.error().context, "L2");
        EXPECT_FALSE(e.error().hint.empty());
        // The source location points into the validator, not here.
        EXPECT_NE(std::string(e.error().where.file_name())
                      .find("config.cc"),
                  std::string::npos);
    }
}
