/**
 * @file
 * ReplBlock (the flattened, enum-dispatched replacement engine on the
 * per-access hot path) must be observationally identical to the
 * polymorphic reference implementations it transcribed: TrueLruSet,
 * NruSet, BtPlruSet (cache/replacement.h) and RripSet (cache/rrip.h).
 * These tests drive both through long random operation sequences and
 * compare every victim choice and every stack position — the goldens
 * pin whole-simulator behavior, this pins the engine itself for all
 * policies including those the default configs never exercise.
 */

#include <gtest/gtest.h>

#include "cache/repl_flat.h"
#include "cache/replacement.h"
#include "cache/rrip.h"
#include "common/rng.h"

using namespace csalt;

namespace
{

struct FlatCase
{
    ReplacementKind kind;
    unsigned ways;
};

class FlatVsReference : public ::testing::TestWithParam<FlatCase>
{
};

std::unique_ptr<SetReplacement>
makeReference(ReplacementKind kind, unsigned ways)
{
    if (kind == ReplacementKind::rrip)
        return std::make_unique<RripSet>(ways);
    return makeSetReplacement(kind, ways);
}

} // namespace

TEST_P(FlatVsReference, RandomOpSequenceMatchesReference)
{
    const auto param = GetParam();
    constexpr std::uint64_t kSets = 4;

    ReplBlock flat(param.kind, kSets, param.ways);
    std::vector<std::unique_ptr<SetReplacement>> refs;
    for (std::uint64_t s = 0; s < kSets; ++s)
        refs.push_back(makeReference(param.kind, param.ways));

    Rng rng(0x5eed + static_cast<int>(param.kind) * 100 + param.ways);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t set = rng.below(kSets);
        SetReplacement &ref = *refs[set];
        switch (rng.below(3)) {
          case 0: {
            const auto way =
                static_cast<unsigned>(rng.below(param.ways));
            flat.touch(set, way);
            ref.touch(way);
            break;
          }
          case 1: {
            const auto lo =
                static_cast<unsigned>(rng.below(param.ways));
            const auto hi =
                lo + static_cast<unsigned>(rng.below(param.ways - lo));
            // Both victimIn calls may age (RRIP), so they must be
            // issued in lockstep to stay comparable.
            ASSERT_EQ(flat.victimIn(set, lo, hi),
                      ref.victimIn(lo, hi))
                << "set " << set << " range [" << lo << "," << hi
                << "] op " << i;
            break;
          }
          case 2: {
            if (param.kind == ReplacementKind::rrip) {
                const auto way =
                    static_cast<unsigned>(rng.below(param.ways));
                const bool long_rrpv = rng.below(2) != 0;
                flat.insertAt(set, way, long_rrpv);
                static_cast<RripSet &>(ref).insertAt(way, long_rrpv);
            } else {
                const auto way =
                    static_cast<unsigned>(rng.below(param.ways));
                flat.touch(set, way);
                ref.touch(way);
            }
            break;
          }
        }
        for (unsigned w = 0; w < param.ways; ++w) {
            ASSERT_EQ(flat.stackPosOf(set, w), ref.stackPosOf(w))
                << "set " << set << " way " << w << " op " << i;
        }
    }
}

TEST_P(FlatVsReference, SetsAreIndependent)
{
    const auto param = GetParam();
    ReplBlock flat(param.kind, 2, param.ways);
    auto ref = makeReference(param.kind, param.ways);

    // Hammer set 1; set 0 must stay bit-identical to a fresh
    // reference set.
    Rng rng(42);
    for (int i = 0; i < 200; ++i)
        flat.touch(1, static_cast<unsigned>(rng.below(param.ways)));
    for (unsigned w = 0; w < param.ways; ++w)
        EXPECT_EQ(flat.stackPosOf(0, w), ref->stackPosOf(w));
}

TEST_P(FlatVsReference, CorruptMatchesReferenceHook)
{
    const auto param = GetParam();
    ReplBlock flat(param.kind, 1, param.ways);
    auto ref = makeReference(param.kind, param.ways);

    flat.corrupt(0);
    ref->corruptForTest();
    for (unsigned w = 0; w < param.ways; ++w)
        EXPECT_EQ(flat.stackPosOf(0, w), ref->stackPosOf(w));
}

TEST(ReplBlockGeometry, ReportsKindWaysSets)
{
    ReplBlock flat(ReplacementKind::nru, 8, 4);
    EXPECT_EQ(flat.kind(), ReplacementKind::nru);
    EXPECT_EQ(flat.ways(), 4u);
    EXPECT_EQ(flat.sets(), 8u);
}

TEST(ReplBlockGeometry, ResetRestoresFreshState)
{
    ReplBlock flat(ReplacementKind::trueLru, 2, 4);
    flat.touch(0, 3);
    flat.touch(1, 1);
    flat.reset();
    ReplBlock fresh(ReplacementKind::trueLru, 2, 4);
    for (std::uint64_t s = 0; s < 2; ++s)
        for (unsigned w = 0; w < 4; ++w)
            EXPECT_EQ(flat.stackPosOf(s, w), fresh.stackPosOf(s, w));
}

TEST(ReplBlockGeometry, BtPlruRequiresPowerOfTwoWays)
{
    EXPECT_DEATH(ReplBlock(ReplacementKind::btPlru, 4, 6),
                 "power-of-two");
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FlatVsReference,
    ::testing::Values(FlatCase{ReplacementKind::trueLru, 4},
                      FlatCase{ReplacementKind::trueLru, 8},
                      FlatCase{ReplacementKind::trueLru, 16},
                      FlatCase{ReplacementKind::nru, 4},
                      FlatCase{ReplacementKind::nru, 8},
                      FlatCase{ReplacementKind::nru, 16},
                      FlatCase{ReplacementKind::btPlru, 4},
                      FlatCase{ReplacementKind::btPlru, 8},
                      FlatCase{ReplacementKind::btPlru, 16},
                      FlatCase{ReplacementKind::rrip, 4},
                      FlatCase{ReplacementKind::rrip, 8},
                      FlatCase{ReplacementKind::rrip, 16}));
