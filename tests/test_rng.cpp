/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

using namespace csalt;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (rng.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(13);
    std::vector<int> buckets(10, 0);
    for (int i = 0; i < 50000; ++i)
        ++buckets[rng.below(10)];
    for (int count : buckets)
        EXPECT_NEAR(count, 5000, 500);
}

TEST(Rng, ZipfStaysInRange)
{
    Rng rng(17);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(rng.zipf(1000, 0.8), 1000u);
}

TEST(Rng, ZipfDegenerateRange)
{
    Rng rng(19);
    EXPECT_EQ(rng.zipf(1, 0.8), 0u);
    EXPECT_EQ(rng.zipf(0, 0.8), 0u);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng rng(23);
    std::uint64_t low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.zipf(10000, 0.9) < 1000)
            ++low;
    // With s=0.9, far more than the uniform 10% should land in the
    // first decile.
    EXPECT_GT(low, n / 4);
}

// Cross-platform determinism is a correctness property here — the
// parallel job runner asserts that identical job keys give identical
// metrics at any --jobs value, which holds only if the generators
// produce identical streams everywhere. Pin exact outputs for a
// fixed seed instead of assuming them.
TEST(Rng, PinnedNextStream)
{
    Rng rng(12345);
    const std::uint64_t expected[] = {
        13720838825685603483ull, 2398916695208396998ull,
        17770384849984869256ull, 891717726879801395ull,
        10241316046318454344ull, 196975429884907396ull,
        2947371003896198809ull,  5456629693515947710ull,
    };
    for (const std::uint64_t v : expected)
        EXPECT_EQ(rng.next(), v);
}

TEST(Rng, PinnedBelowStream)
{
    Rng rng(12345);
    const std::uint64_t expected[] = {743, 130, 963, 48,
                                      555, 10,  159, 295};
    for (const std::uint64_t v : expected)
        EXPECT_EQ(rng.below(1000), v);
}

TEST(Rng, PinnedZipfStream)
{
    Rng rng(12345);
    const std::uint64_t expected[] = {26966, 47, 84553, 5,
                                      7753,  0,  85,    657};
    for (const std::uint64_t v : expected)
        EXPECT_EQ(rng.zipf(100000, 0.8), v);
}

TEST(Rng, ZipfNegativeExponentClampsToUniform)
{
    // s < 0 must behave exactly like s == 0 (uniform), not fall into
    // the anti-skewed tail of the inverse-CDF formula.
    Rng neg(99);
    Rng zero(99);
    for (int i = 0; i < 2000; ++i)
        ASSERT_EQ(neg.zipf(1000, -3.0), zero.zipf(1000, 0.0));

    Rng uni(99);
    std::vector<int> buckets(10, 0);
    for (int i = 0; i < 50000; ++i)
        ++buckets[uni.zipf(1000, -1.0) / 100];
    for (int count : buckets)
        EXPECT_NEAR(count, 5000, 600);
}

// The workload generators draw from ZipfDist (constants hoisted out
// of the per-draw path); golden-stats byte-identity across the
// refactor requires it to consume generator state and produce indices
// exactly like Rng::zipf. Exercise the main branch, the s-near-1
// branch, the negative-s clamp, and the degenerate sizes (which must
// not touch the generator at all).
TEST(Rng, ZipfDistMatchesZipfExactly)
{
    const struct
    {
        std::uint64_t n;
        double s;
    } cases[] = {{100000, 0.8}, {49152, 0.7}, {1280, 0.4},
                 {1000, 1.0},   {1000, -3.0}, {1, 0.8},
                 {0, 0.8}};
    for (const auto &c : cases) {
        Rng a(12345);
        Rng b(12345);
        const ZipfDist dist(c.n, c.s);
        for (int i = 0; i < 5000; ++i)
            ASSERT_EQ(dist(b), a.zipf(c.n, c.s))
                << "n=" << c.n << " s=" << c.s << " draw " << i;
        // Both generators must be in the same state afterwards.
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, ZipfHigherSkewConcentratesMore)
{
    Rng a(29);
    Rng b(29);
    std::uint64_t low_mild = 0;
    std::uint64_t low_heavy = 0;
    for (int i = 0; i < 20000; ++i) {
        if (a.zipf(10000, 0.3) < 500)
            ++low_mild;
        if (b.zipf(10000, 0.95) < 500)
            ++low_heavy;
    }
    EXPECT_GT(low_heavy, low_mild);
}
