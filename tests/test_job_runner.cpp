/**
 * @file
 * Tests for the parallel experiment job runner (src/harness): the
 * determinism contract (same grid, same numbers, any --jobs value),
 * failure isolation, seed derivation, ordered result streaming, and
 * the thread-safety of the shared logging state. Labelled `harness`
 * so scripts/check.sh can run exactly this suite under TSan.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "common/progress.h"
#include "harness/job_runner.h"
#include "harness/results.h"
#include "sim/metrics_io.h"
#include "sim/system_builder.h"
#include "workloads/registry.h"

using namespace csalt;
using namespace csalt::harness;

namespace
{

/** One reduced simulation cell, as the benches run them. */
RunMetrics
simulate(const std::string &workload,
         void (*apply)(SystemParams &))
{
    BuildSpec spec;
    apply(spec.params);
    const PairSpec pair = resolvePair(workload);
    spec.vm_workloads = {pair.vm1, pair.vm2};
    auto system = buildSystem(spec);
    system->run(1000);
    system->clearAllStats();
    system->run(5000);
    return collectMetrics(*system);
}

/** The reduced sweep grid used by the determinism tests. */
std::vector<JobOutcome<RunMetrics>>
runReducedSweep(unsigned jobs)
{
    struct Cell
    {
        const char *workload;
        const char *scheme;
        void (*apply)(SystemParams &);
    };
    const std::vector<Cell> grid = {
        {"gups", "pom", applyPomTlb},
        {"gups", "csCD", applyCsaltCD},
        {"ccomp", "pom", applyPomTlb},
        {"ccomp", "csCD", applyCsaltCD},
    };
    JobRunner<RunMetrics> runner(jobs);
    for (const Cell &cell : grid) {
        runner.add(std::string(cell.workload) + "/" + cell.scheme,
                   [cell] {
                       return simulate(cell.workload, cell.apply);
                   });
    }
    return runner.run();
}

} // namespace

TEST(DeriveSeed, StableAcrossRuns)
{
    // Pinned: the derived seed is part of the reproducibility
    // contract, so a silent change should fail loudly.
    EXPECT_EQ(deriveSeed(1, "gups/pom"), deriveSeed(1, "gups/pom"));
    EXPECT_NE(deriveSeed(1, "gups/pom"), deriveSeed(2, "gups/pom"));
    EXPECT_NE(deriveSeed(1, "gups/pom"), deriveSeed(1, "gups/csD"));
    EXPECT_NE(deriveSeed(1, "a"), deriveSeed(1, "b"));
}

TEST(SanitizeJobKey, DistinctKeysNeverCollide)
{
    // The character replacement alone is lossy: "a/b" and "a_b" both
    // render as "a_b", so two grid cells would publish into the same
    // $CSALT_LIVE_DIR live region and clobber each other. The
    // appended raw-key hash keeps them apart.
    EXPECT_NE(sanitizeJobKey("a/b"), sanitizeJobKey("a_b"));
    EXPECT_NE(sanitizeJobKey("gups/csalt-cd"),
              sanitizeJobKey("gups_csalt-cd"));
    EXPECT_NE(sanitizeJobKey("a:b"), sanitizeJobKey("a/b"));

    // Same key -> same file name (resume/attach depend on it).
    EXPECT_EQ(sanitizeJobKey("gups/pom"), sanitizeJobKey("gups/pom"));

    // Still filename-safe: nothing outside [A-Za-z0-9._-].
    const std::string s = sanitizeJobKey("a/b:c d*");
    for (const char c : s) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' ||
                          c == '_' || c == '-';
        EXPECT_TRUE(safe) << "unsafe char in " << s;
    }
}

TEST(DeriveSeed, IndependentOfSubmissionOrder)
{
    // The seed depends only on (base, key): submitting the same keys
    // in any order and on any worker count gives identical seeds.
    const std::vector<std::string> keys = {"w1/pom", "w2/pom",
                                           "w1/csD", "w2/csD"};
    std::vector<std::uint64_t> forward;
    for (const auto &key : keys)
        forward.push_back(deriveSeed(7, key));

    JobRunner<std::uint64_t> reversed(3);
    for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
        const std::string key = *it;
        reversed.add(key, [key] { return deriveSeed(7, key); });
    }
    const auto outcomes = reversed.run();
    ASSERT_EQ(outcomes.size(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(outcomes[i].key, keys[keys.size() - 1 - i]);
        EXPECT_EQ(*outcomes[i].value,
                  forward[keys.size() - 1 - i]);
    }
}

TEST(JobRunner, ResultsCollectedInSubmissionOrder)
{
    // Later jobs finish first (they sleep less); outcomes must still
    // come back in submission order.
    JobRunner<int> runner(4);
    for (int i = 0; i < 8; ++i) {
        runner.add("job" + std::to_string(i), [i] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5 * (8 - i)));
            return i * i;
        });
    }
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(outcomes[i].key, "job" + std::to_string(i));
        ASSERT_TRUE(outcomes[i].ok);
        EXPECT_EQ(*outcomes[i].value, i * i);
        EXPECT_GE(outcomes[i].wall_s, 0.0);
    }
}

TEST(JobRunner, OrderedCallbackStreamsInSubmissionOrder)
{
    for (const unsigned jobs : {1u, 4u}) {
        JobRunner<int> runner(jobs);
        for (int i = 0; i < 10; ++i) {
            runner.add(std::to_string(i), [i] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds((i * 7) % 13));
                return i;
            });
        }
        std::vector<std::size_t> emitted;
        runner.setOrderedCallback(
            [&](std::size_t index, const JobOutcome<int> &o) {
                EXPECT_EQ(o.key, std::to_string(index));
                emitted.push_back(index);
            });
        runner.run();
        ASSERT_EQ(emitted.size(), 10u);
        for (std::size_t i = 0; i < emitted.size(); ++i)
            EXPECT_EQ(emitted[i], i);
    }
}

TEST(JobRunner, ExceptionInOneJobDoesNotLoseOthers)
{
    for (const unsigned jobs : {1u, 8u}) {
        JobRunner<int> runner(jobs);
        for (int i = 0; i < 12; ++i) {
            runner.add("j" + std::to_string(i), [i]() -> int {
                if (i % 4 == 2)
                    throw std::runtime_error(
                        "boom " + std::to_string(i));
                return i + 100;
            });
        }
        const auto outcomes = runner.run();
        ASSERT_EQ(outcomes.size(), 12u);
        for (int i = 0; i < 12; ++i) {
            if (i % 4 == 2) {
                EXPECT_FALSE(outcomes[i].ok);
                EXPECT_FALSE(outcomes[i].value.has_value());
                EXPECT_EQ(outcomes[i].error,
                          "boom " + std::to_string(i));
            } else {
                ASSERT_TRUE(outcomes[i].ok) << outcomes[i].key;
                EXPECT_EQ(*outcomes[i].value, i + 100);
            }
        }
    }
}

TEST(JobRunner, ParseJobsFlagConsumesFlag)
{
    char prog[] = "bench";
    char a1[] = "--jobs";
    char a2[] = "6";
    char a3[] = "ccomp";
    char *argv[] = {prog, a1, a2, a3, nullptr};
    int argc = 4;
    EXPECT_EQ(parseJobsFlag(argc, argv), 6u);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "ccomp");

    char b1[] = "--jobs=3";
    char *argv2[] = {prog, b1, nullptr};
    int argc2 = 2;
    EXPECT_EQ(parseJobsFlag(argc2, argv2), 3u);
    EXPECT_EQ(argc2, 1);
}

// The determinism contract end-to-end: a reduced sweep produces
// bit-exact metrics JSON under --jobs 1 and --jobs 8.
TEST(JobRunner, ReducedSweepBitExactAcrossJobCounts)
{
    const auto seq = runReducedSweep(1);
    const auto par = runReducedSweep(8);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        ASSERT_TRUE(seq[i].ok);
        ASSERT_TRUE(par[i].ok) << par[i].key << ": " << par[i].error;
        EXPECT_EQ(seq[i].key, par[i].key);
        EXPECT_EQ(metricsJson(seq[i].key, *seq[i].value),
                  metricsJson(par[i].key, *par[i].value))
            << "metrics diverge for " << seq[i].key;
    }
    // The aggregate document (modulo wall clock) is bit-stable too.
    EXPECT_EQ(jobsJson(seq, /*include_wall=*/false),
              jobsJson(par, /*include_wall=*/false));
}

TEST(JobRunner, RunnerFlagsParseAndConflict)
{
    char prog[] = "tool";
    char a1[] = "--jobs";
    char a2[] = "3";
    char a3[] = "--retries";
    char a4[] = "2";
    char a5[] = "--job-timeout";
    char a6[] = "1.5";
    char a7[] = "--resume";
    char a8[] = "ccomp";
    char *argv[] = {prog, a1, a2, a3, a4, a5, a6, a7, a8, nullptr};
    int argc = 9;
    const RunnerOptions opts = parseRunnerFlags(argc, argv);
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.retries, 2u);
    EXPECT_DOUBLE_EQ(opts.job_timeout_s, 1.5);
    EXPECT_TRUE(opts.resume);
    EXPECT_FALSE(opts.fresh);
    ASSERT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "ccomp");
}

TEST(JobRunner, WatchdogCancelsStalledJob)
{
    // The stalled job never ticks; the watchdog must cancel it while
    // the healthy job (and the grid) completes.
    RunnerOptions opts;
    opts.jobs = 2;
    opts.stall_timeout_s = 0.05;
    JobRunner<int> runner(opts);
    runner.add("stalls", []() -> int {
        while (!progressCancelled()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        raiseCancelled();
    });
    runner.add("healthy", [] {
        progressTick(100);
        return 7;
    });
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].error_kind, "timeout");
    EXPECT_NE(outcomes[0].error.find("progress"), std::string::npos)
        << outcomes[0].error;
    ASSERT_TRUE(outcomes[1].ok);
    EXPECT_EQ(*outcomes[1].value, 7);
}

TEST(JobRunner, HardTimeoutCancelsDespiteProgress)
{
    RunnerOptions opts;
    opts.jobs = 1;
    opts.job_timeout_s = 0.05;
    opts.retries = 3; // must be ignored: timeouts do not retry
    JobRunner<int> runner(opts);
    runner.add("runaway", []() -> int {
        // Ticks steadily, so only the hard timeout can stop it.
        while (!progressCancelled()) {
            progressTick(1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        raiseCancelled();
    });
    const auto outcomes = runner.run();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].error_kind, "timeout");
    EXPECT_EQ(outcomes[0].attempts, 1u)
        << "a deterministic timeout must not burn retries";
}

TEST(JobRunner, RetriesRecoverAFlakyJob)
{
    RunnerOptions opts;
    opts.retries = 2;
    opts.retry_backoff_s = 0.0;
    JobRunner<int> runner(opts);
    std::atomic<int> calls{0};
    runner.add("flaky", [&calls] {
        if (++calls < 3)
            raise(makeError(ErrorKind::io, "transient"));
        return 42;
    });
    runner.add("fails-forever", [] () -> int {
        raise(makeError(ErrorKind::build, "permanent"));
    });
    const auto outcomes = runner.run();
    ASSERT_TRUE(outcomes[0].ok);
    EXPECT_EQ(*outcomes[0].value, 42);
    EXPECT_EQ(outcomes[0].attempts, 3u);
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].attempts, 3u); // 1 + 2 retries
    EXPECT_EQ(outcomes[1].error_kind, "build");
    EXPECT_EQ(countFailures(outcomes), 1u);
}

// Give TSan real contention on the shared logging state: the fixes
// in common/log.cc (atomic level, guarded warnOnce, single-write
// emission) are what make parallel jobs safe to log from.
TEST(LogThreadSafety, ConcurrentWarnOnceAndLevel)
{
    JobRunner<int> runner(8);
    std::atomic<int> printed{0};
    for (int i = 0; i < 32; ++i) {
        runner.add("log" + std::to_string(i), [i, &printed] {
            setLogLevel(i % 2 ? LogLevel::quiet : LogLevel::debug);
            for (int k = 0; k < 50; ++k) {
                (void)logLevel();
                inform(LogLevel::debug, "concurrent inform");
                if (warnOnce("concurrent warnOnce"))
                    ++printed;
            }
            return 0;
        });
    }
    const auto outcomes = runner.run();
    for (const auto &o : outcomes)
        EXPECT_TRUE(o.ok);
    // One call site: exactly one thread may win the print.
    EXPECT_EQ(printed.load(), 1);
    setLogLevel(LogLevel::quiet);
}
