/**
 * @file
 * CSALTSNAP checkpoint/restore tests — the robustness contract:
 *
 *  - the container round-trips (meta + chunk table + payloads);
 *  - every injected corruption (check::SnapshotFault) is rejected
 *    with a typed kind=parse error naming the chunk and byte offset,
 *    and a failed restore never partially mutates the target;
 *  - save -> load -> save is byte-equal for every registered
 *    component (the serialize/restore/serialize property, checked
 *    chunk by chunk so a regression names the component);
 *  - checkpoint at instruction K, restore into a fresh system, run
 *    to completion => metrics byte-identical to the uninterrupted
 *    run, for both a CSALT scheme and a structurally different
 *    backend (victima);
 *  - writeSnapshotRotating rotates keep-last-K and beats the
 *    watchdog's ProgressToken around the I/O.
 *
 * scripts/check.sh repeats the restore guarantee end-to-end with a
 * real `kill -9` against csalt-sim.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "check/fault_injector.h"
#include "common/progress.h"
#include "sim/metrics_io.h"
#include "sim/system_builder.h"
#include "snapshot/checkpoint.h"
#include "snapshot/snapshot.h"
#include "workloads/registry.h"

using namespace csalt;

namespace
{

/** Small two-VM build so whole-system tests stay fast. */
BuildSpec
smallSpec(void (*apply)(SystemParams &))
{
    BuildSpec spec;
    apply(spec.params);
    spec.params.num_cores = 2;
    const PairSpec pair = resolvePair("gups");
    spec.vm_workloads = {pair.vm1, pair.vm2};
    spec.workload_scale = 0.05;
    return spec;
}

std::uint32_t
crcOf(const BuildSpec &spec)
{
    return snapshot::configSignature(spec.params, spec.vm_workloads,
                                     spec.workload_scale);
}

snapshot::SnapshotMeta
metaFor(const BuildSpec &spec, const System &sys, std::uint8_t phase,
        std::uint64_t warmup, std::uint64_t quota)
{
    snapshot::SnapshotMeta meta;
    meta.config_crc = crcOf(spec);
    meta.scheme = "test";
    meta.vms = spec.vm_workloads;
    meta.scale = spec.workload_scale;
    meta.seed = spec.params.seed;
    meta.warmup = warmup;
    meta.quota = quota;
    meta.phase = phase;
    meta.steps = sys.steps();
    meta.epoch = sys.liveEpoch();
    return meta;
}

/** A warmed-up small system plus its serialized snapshot. */
struct Snapshotted
{
    BuildSpec spec;
    std::unique_ptr<System> system;
    std::string bytes;
};

Snapshotted
makeSnapshotted(void (*apply)(SystemParams &) = applyCsaltD)
{
    Snapshotted s;
    s.spec = smallSpec(apply);
    s.system = buildSystem(s.spec);
    s.system->run(2000);
    s.bytes = snapshot::serializeSystem(
        *s.system, metaFor(s.spec, *s.system, 0, 2000, 4000));
    return s;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "csalt_snapshot_" + name;
}

TEST(SnapshotContainer, MetaAndChunksRoundTrip)
{
    snapshot::SnapshotMeta meta;
    meta.config_crc = 0xdeadbeef;
    meta.scheme = "csalt-cd";
    meta.vms = {"gups", "pagerank"};
    meta.scale = 1.25;
    meta.seed = 42;
    meta.warmup = 500;
    meta.quota = 1000;
    meta.phase = 1;
    meta.steps = 123456;
    meta.epoch = 7;
    meta.instructions = 99999;

    snapshot::SnapshotWriter writer(meta);
    writer.addChunk("core.0", std::string("\x01\x02\x03", 3));
    writer.addChunk("mem", std::string()); // empty payloads are legal
    const std::string bytes = writer.serialize();

    const auto reader = snapshot::SnapshotReader::parse(bytes);
    EXPECT_EQ(reader.meta().config_crc, 0xdeadbeefu);
    EXPECT_EQ(reader.meta().scheme, "csalt-cd");
    EXPECT_EQ(reader.meta().vms,
              (std::vector<std::string>{"gups", "pagerank"}));
    EXPECT_DOUBLE_EQ(reader.meta().scale, 1.25);
    EXPECT_EQ(reader.meta().seed, 42u);
    EXPECT_EQ(reader.meta().warmup, 500u);
    EXPECT_EQ(reader.meta().quota, 1000u);
    EXPECT_EQ(reader.meta().phase, 1);
    EXPECT_EQ(reader.meta().steps, 123456u);
    EXPECT_EQ(reader.meta().epoch, 7u);
    EXPECT_EQ(reader.meta().instructions, 99999u);

    // meta + the two component chunks; END is consumed, not listed.
    ASSERT_EQ(reader.chunks().size(), 3u);
    EXPECT_EQ(reader.chunks()[0].name, "meta");
    EXPECT_EQ(reader.chunks()[1].name, "core.0");
    EXPECT_EQ(reader.chunks()[1].payload_size, 3u);
    EXPECT_EQ(reader.chunks()[2].name, "mem");
    EXPECT_EQ(reader.chunks()[2].payload_size, 0u);
    EXPECT_TRUE(reader.hasChunk("core.0"));
    EXPECT_FALSE(reader.hasChunk("core.1"));

    auto d = reader.open("core.0");
    EXPECT_EQ(d.getU8(), 1);
    EXPECT_EQ(d.getU8(), 2);
    EXPECT_EQ(d.getU8(), 3);
    d.finish();
}

TEST(SnapshotContainer, RejectsBadMagicAndTrailingGarbage)
{
    const Snapshotted s = makeSnapshotted();

    std::string bad = s.bytes;
    bad[0] = 'X';
    EXPECT_THROW(snapshot::SnapshotReader::parse(bad), CsaltError);

    std::string trailing = s.bytes + "junk";
    try {
        snapshot::SnapshotReader::parse(trailing);
        FAIL() << "trailing garbage accepted";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::parse);
        EXPECT_NE(e.error().message.find("trailing"),
                  std::string::npos)
            << e.error().message;
    }
}

/**
 * Every snapshot fault must be rejected with a typed error that
 * names the offending chunk and a byte offset — and must reject at
 * parse/restore time, never after partially mutating a system.
 */
TEST(SnapshotFaults, EveryFaultRejectedWithTypedError)
{
    const Snapshotted s = makeSnapshotted();
    const std::uint32_t crc = crcOf(s.spec);

    for (const check::SnapshotFault fault :
         check::allSnapshotFaults()) {
        SCOPED_TRACE(check::snapshotFaultName(fault));
        const std::string corrupted =
            check::injectSnapshotFault(s.bytes, fault, /*seed=*/7);
        ASSERT_NE(corrupted, s.bytes);

        auto fresh = buildSystem(s.spec);
        const std::string before = snapshot::serializeSystem(
            *fresh, metaFor(s.spec, *fresh, 0, 2000, 4000));

        try {
            // missing-chunk survives the container walk (the file is
            // self-consistent) and must then be refused by restore's
            // chunk-presence check; the other four die in parse().
            const auto reader =
                snapshot::SnapshotReader::parse(corrupted);
            snapshot::restoreSystem(*fresh, reader, crc);
            FAIL() << "corrupted snapshot accepted";
        } catch (const CsaltError &e) {
            EXPECT_EQ(e.error().kind, ErrorKind::parse)
                << oneLine(e.error());
            const std::string all =
                e.error().message + " | " + e.error().context;
            EXPECT_NE(all.find("byte"), std::string::npos) << all;
            if (fault == check::SnapshotFault::payloadBitFlip ||
                fault == check::SnapshotFault::crcFlip ||
                fault == check::SnapshotFault::missingChunk) {
                EXPECT_NE(all.find("chunk"), std::string::npos)
                    << all;
            }
        }

        // Never a partial restore: the failed attempt left the
        // fresh system byte-identical to its pre-restore state.
        const std::string after = snapshot::serializeSystem(
            *fresh, metaFor(s.spec, *fresh, 0, 2000, 4000));
        EXPECT_EQ(before, after)
            << "failed restore mutated the system";
    }
}

TEST(SnapshotFaults, VersionSkewNamesBothVersions)
{
    const Snapshotted s = makeSnapshotted();
    const std::string skewed = check::injectSnapshotFault(
        s.bytes, check::SnapshotFault::versionSkew);
    try {
        snapshot::SnapshotReader::parse(skewed);
        FAIL() << "version skew accepted";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::parse);
        EXPECT_NE(e.error().message.find("version"),
                  std::string::npos)
            << e.error().message;
    }
}

TEST(SnapshotRestore, RefusesDifferentConfigSignature)
{
    const Snapshotted s = makeSnapshotted();
    const auto reader = snapshot::SnapshotReader::parse(s.bytes);

    BuildSpec other = s.spec;
    other.params.seed += 1; // any config delta changes the signature
    auto fresh = buildSystem(other);
    try {
        snapshot::restoreSystem(*fresh, reader, crcOf(other));
        FAIL() << "config mismatch accepted";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::config)
            << oneLine(e.error());
    }
}

/**
 * The serialize/restore/serialize property: restoring a snapshot
 * into a fresh identically-configured system and re-serializing
 * reproduces the original image chunk for chunk — every registered
 * component's loadState consumes exactly what its saveState wrote.
 */
TEST(SnapshotProperty, SaveLoadSaveIsByteEqualPerComponent)
{
    for (auto *apply : {applyCsaltCD, applyVictima, applyTsb,
                        applyPcax, applyConventional}) {
        const Snapshotted s = makeSnapshotted(apply);
        const auto reader = snapshot::SnapshotReader::parse(s.bytes);

        auto fresh = buildSystem(s.spec);
        snapshot::restoreSystem(*fresh, reader, crcOf(s.spec));

        snapshot::SnapshotMeta meta = reader.meta();
        const std::string again =
            snapshot::serializeSystem(*fresh, meta);
        const auto reader2 = snapshot::SnapshotReader::parse(again);

        ASSERT_EQ(reader.chunks().size(), reader2.chunks().size());
        for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
            const auto &a = reader.chunks()[i];
            const auto &b = reader2.chunks()[i];
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.payload_size, b.payload_size)
                << "component '" << a.name << "' re-saved a "
                << "different size";
            EXPECT_EQ(a.crc, b.crc)
                << "component '" << a.name
                << "' is not byte-stable across save/load/save";
        }
        EXPECT_EQ(s.bytes, again);
    }
}

/**
 * The headline guarantee, in process: interrupt a run mid-measured
 * phase, snapshot, restore into a fresh process-equivalent system,
 * run to completion — the metrics JSON is byte-identical to the
 * uninterrupted run's. Checked for a CSALT scheme and victima (the
 * acceptance floor of two structurally different backends).
 */
TEST(SnapshotRestore, ResumedRunMatchesUninterruptedRun)
{
    constexpr std::uint64_t kWarmup = 1500;
    constexpr std::uint64_t kQuota = 6000;

    for (auto *apply : {applyCsaltD, applyVictima}) {
        const BuildSpec spec = smallSpec(apply);

        // The reference run doubles as the interrupted one: the
        // checkpoint hook captures the image mid-measured-phase
        // (exactly where a SIGKILL'd process would have left it —
        // NOT at a run() boundary, which would impose a per-core
        // instruction barrier the uninterrupted run never has) and
        // the run then continues to completion for `want`.
        auto straight = buildSystem(spec);
        straight->run(kWarmup);
        straight->clearAllStats();
        std::string bytes;
        const std::uint64_t snap_after = straight->steps() + kQuota;
        straight->setCheckpointHook([&] {
            if (bytes.empty() && straight->steps() >= snap_after)
                bytes = snapshot::serializeSystem(
                    *straight,
                    metaFor(spec, *straight, 1, kWarmup, kQuota));
        });
        straight->run(kQuota);
        const std::string want =
            metricsJson("resume", collectMetrics(*straight));
        ASSERT_FALSE(bytes.empty())
            << "checkpoint hook never fired mid-measured-phase";
        straight.reset(); // the original process is gone

        auto resumed = buildSystem(spec);
        snapshot::restoreSystem(
            *resumed, snapshot::SnapshotReader::parse(bytes),
            crcOf(spec));
        resumed->run(kQuota);
        const std::string got =
            metricsJson("resume", collectMetrics(*resumed));

        EXPECT_EQ(want, got)
            << "restored run diverged from the uninterrupted run";
    }
}

/** Restoring during warmup must also replay to identical metrics. */
TEST(SnapshotRestore, WarmupPhaseRestoreMatches)
{
    // A step can retire several instructions, and the hook only
    // polls at 4096-step event boundaries: warmup must span enough
    // steps (~4/3 per instruction here) to fire it at least once.
    constexpr std::uint64_t kWarmup = 4000;
    constexpr std::uint64_t kQuota = 4000;
    const BuildSpec spec = smallSpec(applyCsaltD);

    auto straight = buildSystem(spec);
    std::string bytes; // captured at the first warmup heartbeat
    straight->setCheckpointHook([&] {
        if (bytes.empty())
            bytes = snapshot::serializeSystem(
                *straight,
                metaFor(spec, *straight, 0, kWarmup, kQuota));
    });
    straight->run(kWarmup);
    ASSERT_FALSE(bytes.empty())
        << "checkpoint hook never fired during warmup";
    straight->clearAllStats();
    straight->run(kQuota);
    const std::string want =
        metricsJson("resume", collectMetrics(*straight));
    straight.reset();

    auto resumed = buildSystem(spec);
    snapshot::restoreSystem(*resumed,
                            snapshot::SnapshotReader::parse(bytes),
                            crcOf(spec));
    resumed->run(kWarmup); // finish warmup, then the measured phase
    resumed->clearAllStats();
    resumed->run(kQuota);
    const std::string got =
        metricsJson("resume", collectMetrics(*resumed));

    EXPECT_EQ(want, got);
}

TEST(SnapshotRotation, KeepLastKAndAtomicWrite)
{
    const std::string path = tmpPath("rotate.ckpt");
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
    std::remove((path + ".2").c_str());

    auto readAll = [](const std::string &p) {
        std::ifstream in(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };

    ASSERT_TRUE(
        snapshot::writeSnapshotRotating(path, "one", 2).ok());
    ASSERT_TRUE(
        snapshot::writeSnapshotRotating(path, "two", 2).ok());
    ASSERT_TRUE(
        snapshot::writeSnapshotRotating(path, "three", 2).ok());

    EXPECT_EQ(readAll(path), "three");
    EXPECT_EQ(readAll(path + ".1"), "two"); // "one" rotated off
    EXPECT_FALSE(std::ifstream(path + ".2").good());

    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

/**
 * Regression (PR 9 satellite): checkpoint I/O must beat the
 * watchdog's ProgressToken — a multi-hundred-MB snapshot write must
 * never be mistaken for a hung job.
 */
TEST(SnapshotRotation, WriteBeatsProgressToken)
{
    ProgressToken token;
    setProgressToken(&token);
    const std::uint64_t before = token.ticks();

    const std::string path = tmpPath("tick.ckpt");
    ASSERT_TRUE(
        snapshot::writeSnapshotRotating(path, "payload", 1).ok());
    setProgressToken(nullptr);
    std::remove(path.c_str());

    // One beat before the write and one after.
    EXPECT_GE(token.ticks(), before + 2);
}

} // namespace
