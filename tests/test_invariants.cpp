/**
 * @file
 * Fault-injection tests for the paranoid invariant layer (src/check):
 * a clean run must report zero violations, and every injectable fault
 * must make exactly its paired checker fire — proving the checkers
 * detect real corruption rather than vacuously passing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "check/fault_injector.h"
#include "check/invariants.h"
#include "common/error.h"
#include "sim/system_builder.h"

using namespace csalt;
using namespace csalt::check;

namespace
{

BuildSpec
tinySpec(void (*apply)(SystemParams &))
{
    BuildSpec spec;
    apply(spec.params);
    spec.params.num_cores = 2;
    spec.params.cs_interval = 20'000;
    spec.params.seed = 5;
    spec.vm_workloads = {"canneal", "ccomp"};
    spec.workload_scale = 0.01;
    return spec;
}

constexpr std::uint64_t kQuota = 60'000;

/** Build, run long enough to populate TLBs/POM, and return. */
std::unique_ptr<System>
warmSystem(void (*apply)(SystemParams &) = applyCsaltCD)
{
    auto system = buildSystem(tinySpec(apply));
    system->run(kQuota);
    return system;
}

std::vector<std::string>
invariantNames(const std::vector<Violation> &violations)
{
    std::vector<std::string> names;
    for (const auto &v : violations)
        names.push_back(v.invariant);
    return names;
}

bool
contains(const std::vector<Violation> &violations,
         const std::string &invariant)
{
    for (const auto &v : violations)
        if (v.invariant == invariant)
            return true;
    return false;
}

} // namespace

TEST(FaultInjector, NamesRoundTrip)
{
    const auto faults = allFaults();
    EXPECT_EQ(faults.size(), 7u);
    for (const Fault fault : faults) {
        auto parsed = faultFromName(faultName(fault));
        ASSERT_TRUE(parsed.ok()) << faultName(fault);
        EXPECT_EQ(parsed.value(), fault);
    }
}

TEST(FaultInjector, UnknownNameListsValidFaults)
{
    auto parsed = faultFromName("nosuch-fault");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().kind, ErrorKind::config);
    EXPECT_NE(parsed.error().hint.find("cache-metadata"),
              std::string::npos);
    EXPECT_NE(parsed.error().hint.find("cpi-stack"),
              std::string::npos);
}

TEST(Invariants, ParanoidFromEnvParsesTheUsualSpellings)
{
    ::unsetenv("CSALT_PARANOID");
    EXPECT_FALSE(paranoidFromEnv());
    ::setenv("CSALT_PARANOID", "0", 1);
    EXPECT_FALSE(paranoidFromEnv());
    ::setenv("CSALT_PARANOID", "", 1);
    EXPECT_FALSE(paranoidFromEnv());
    ::setenv("CSALT_PARANOID", "1", 1);
    EXPECT_TRUE(paranoidFromEnv());
    ::unsetenv("CSALT_PARANOID");
}

TEST(Invariants, CleanCsaltRunHasZeroViolations)
{
    auto system = warmSystem(applyCsaltCD);
    CheckOptions full;
    full.full = true;
    const auto violations = checkSystem(*system, full);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violations, first: "
        << violations[0].invariant << " in " << violations[0].where
        << ": " << violations[0].detail;
}

TEST(Invariants, CleanBaselineRunHasZeroViolations)
{
    // The unpartitioned baseline exercises the no-partition and
    // no-profiler paths of the checkers.
    auto system = warmSystem(applyPomTlb);
    CheckOptions full;
    full.full = true;
    EXPECT_TRUE(checkSystem(*system, full).empty());
}

TEST(Invariants, EveryFaultFiresItsPairedChecker)
{
    const struct
    {
        Fault fault;
        const char *invariant;
    } pairs[] = {
        {Fault::cacheMetadata, "cache.occupancy"},
        {Fault::replacementState, "replacement.stack"},
        {Fault::partitionState, "partition.way-sum"},
        {Fault::profilerCounters, "profiler.conservation"},
        {Fault::tlbEntry, "tlb.coherence"},
        {Fault::pomEntry, "pom.coherence"},
        {Fault::cpiStack, "cpi.accounting"},
    };
    ASSERT_EQ(std::size(pairs), allFaults().size())
        << "new fault without a pairing here";
    for (const auto &pair : pairs) {
        auto system = warmSystem(applyCsaltCD);
        injectFault(*system, pair.fault);
        CheckOptions full;
        full.full = true;
        const auto violations = checkSystem(*system, full);
        EXPECT_TRUE(contains(violations, pair.invariant))
            << faultName(pair.fault) << " did not trip "
            << pair.invariant << " (tripped: "
            << ::testing::PrintToString(invariantNames(violations))
            << ")";
    }
}

TEST(Invariants, ParanoidRunRaisesAfterInjection)
{
    // End-to-end: a paranoid System must refuse to finish a run once
    // its state is corrupt, which is what csalt-sim --inject smokes.
    auto system = buildSystem(tinySpec(applyCsaltCD));
    system->setParanoid(true);
    EXPECT_TRUE(system->paranoid());
    system->run(kQuota / 2);
    injectFault(*system, Fault::cpiStack);
    try {
        system->run(kQuota / 2);
        FAIL() << "paranoid run must raise on corrupted state";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::invariant);
        EXPECT_NE(std::string(e.what()).find("cpi.accounting"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Invariants, ParanoidCleanRunCompletes)
{
    auto system = buildSystem(tinySpec(applyCsaltCD));
    system->setParanoid(true);
    system->run(kQuota); // must not throw
    SUCCEED();
}

TEST(Invariants, SchemeDependentFaultsAreTypedConfigErrors)
{
    // The partition/profiler structures do not exist on the POM
    // baseline; injecting there must say so, not crash.
    auto system = warmSystem(applyPomTlb);
    for (const Fault fault :
         {Fault::partitionState, Fault::profilerCounters}) {
        try {
            injectFault(*system, fault);
            FAIL() << faultName(fault);
        } catch (const CsaltError &e) {
            EXPECT_EQ(e.error().kind, ErrorKind::config);
            EXPECT_NE(e.error().hint.find("csalt"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(Invariants, RaiseIfViolatedThrowsTypedInvariantError)
{
    raiseIfViolated({}, "epoch boundary"); // empty: no-op

    std::vector<Violation> violations;
    violations.push_back(
        {"partition.way-sum", "l3", "data 19 of 16 ways"});
    violations.push_back({"cpi.accounting", "core0", "off by 12"});
    try {
        raiseIfViolated(violations, "end of run");
        FAIL() << "must throw";
    } catch (const CsaltError &e) {
        EXPECT_EQ(e.error().kind, ErrorKind::invariant);
        const std::string what = e.what();
        EXPECT_NE(what.find("partition.way-sum"), std::string::npos)
            << what;
        EXPECT_NE(what.find("end of run"), std::string::npos);
        EXPECT_NE(what.find("1 more"), std::string::npos);
    }
}
