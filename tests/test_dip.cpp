/**
 * @file
 * Tests for the DIP set-dueling controller (prior-work baseline of
 * paper Fig. 13).
 */

#include <gtest/gtest.h>

#include "cache/dip.h"

using namespace csalt;

TEST(Dip, LruLeadersAlwaysInsertAtMru)
{
    DipController dip(1024);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(dip.insertAtMru(0)); // set 0 is an LRU leader
    EXPECT_TRUE(dip.insertAtMru(64));
}

TEST(Dip, BipLeadersRarelyPromote)
{
    DipController dip(1024);
    int promoted = 0;
    for (int i = 0; i < 3200; ++i)
        if (dip.insertAtMru(32)) // set 32 is a BIP leader
            ++promoted;
    // Epsilon = 1/32: expect ~100 promotions out of 3200.
    EXPECT_GT(promoted, 40);
    EXPECT_LT(promoted, 220);
}

TEST(Dip, PselMovesWithLeaderMisses)
{
    DipController dip(1024);
    const auto start = dip.psel();
    dip.onMiss(0); // LRU leader miss -> increment
    EXPECT_EQ(dip.psel(), start + 1);
    dip.onMiss(32); // BIP leader miss -> decrement
    dip.onMiss(32);
    EXPECT_EQ(dip.psel(), start - 1);
    dip.onMiss(5); // follower: no change
    EXPECT_EQ(dip.psel(), start - 1);
}

TEST(Dip, PselSaturates)
{
    DipController dip(1024);
    for (int i = 0; i < 5000; ++i)
        dip.onMiss(32);
    EXPECT_EQ(dip.psel(), 0u);
    for (int i = 0; i < 5000; ++i)
        dip.onMiss(0);
    EXPECT_EQ(dip.psel(), 1023u);
}

TEST(Dip, FollowersTrackPsel)
{
    DipController dip(1024);
    // Drive PSEL low: LRU leaders performing well -> followers use
    // MRU insertion.
    for (int i = 0; i < 2000; ++i)
        dip.onMiss(32);
    EXPECT_FALSE(dip.followersUseBip());
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(dip.insertAtMru(5));

    // Drive PSEL high: followers switch to BIP.
    for (int i = 0; i < 4000; ++i)
        dip.onMiss(0);
    EXPECT_TRUE(dip.followersUseBip());
    int promoted = 0;
    for (int i = 0; i < 1600; ++i)
        if (dip.insertAtMru(5))
            ++promoted;
    EXPECT_LT(promoted, 150);
}
