/**
 * @file
 * Tests for the live telemetry export (obs/live_export.h): writer/
 * reader round trip, the seqlock torn-read property under a hammering
 * writer, CRC rejection of corrupted regions, typed open/read errors,
 * and the System-level contract that an attached snapshot is
 * field-identical to the post-hoc sample stream for the same instant.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/json.h"
#include "obs/live_export.h"
#include "obs/sampler.h"
#include "obs/stat_registry.h"
#include "sim/system_builder.h"

using namespace csalt;

namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "csalt_live_test_" +
           std::to_string(::getpid()) + "_" + name;
}

/** Registry of gauges over caller-owned storage. */
struct TestStats
{
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    obs::StatRegistry registry;

    TestStats()
    {
        registry.addCounter("test.a", &a);
        registry.addCounter("test.b", &b);
        registry.addCounter("test.c", &c);
        registry.freeze();
    }
};

} // namespace

TEST(LiveExport, RoundTrip)
{
    const std::string path = tmpPath("roundtrip");
    TestStats stats;
    stats.a = 11;
    stats.b = 22;
    stats.c = 33;

    auto live = obs::LiveExport::create(path, stats.registry);
    ASSERT_TRUE(live.ok()) << oneLine(live.error());
    live.value()->publish(123.5, 42, 7);

    auto reader = obs::LiveReader::open(path);
    ASSERT_TRUE(reader.ok()) << oneLine(reader.error());
    EXPECT_EQ(reader.value().names(),
              (std::vector<std::string>{"test.a", "test.b",
                                        "test.c"}));

    auto snap = reader.value().read();
    ASSERT_TRUE(snap.ok()) << oneLine(snap.error());
    EXPECT_DOUBLE_EQ(snap.value().t, 123.5);
    EXPECT_EQ(snap.value().step, 42u);
    EXPECT_EQ(snap.value().epoch, 7u);
    EXPECT_EQ(snap.value().publish_count, 1u);
    EXPECT_EQ(snap.value().pid,
              static_cast<std::uint32_t>(::getpid()));
    EXPECT_FALSE(snap.value().finished);
    EXPECT_GT(snap.value().wall_unix, 0.0);
    ASSERT_EQ(snap.value().values.size(), 3u);
    EXPECT_DOUBLE_EQ(snap.value().values[0], 11.0);
    EXPECT_DOUBLE_EQ(snap.value().values[1], 22.0);
    EXPECT_DOUBLE_EQ(snap.value().values[2], 33.0);

    // Republish: the reader sees the new payload through the same
    // mapping.
    stats.a = 100;
    live.value()->publish(200.0, 50, 8, /*finished=*/true);
    snap = reader.value().read();
    ASSERT_TRUE(snap.ok()) << oneLine(snap.error());
    EXPECT_DOUBLE_EQ(snap.value().values[0], 100.0);
    EXPECT_EQ(snap.value().publish_count, 2u);
    EXPECT_TRUE(snap.value().finished);

    std::remove(path.c_str());
}

/**
 * Seqlock property: a reader racing a hammering writer never observes
 * a torn payload. The writer publishes value tuples derived from one
 * base (values[i] = base * (i + 1), epoch = base); any snapshot mixing
 * two publishes violates that relation.
 */
TEST(LiveExport, TornReadPropertyUnderHammeringWriter)
{
    const std::string path = tmpPath("torn");
    TestStats stats;
    auto live = obs::LiveExport::create(path, stats.registry);
    ASSERT_TRUE(live.ok()) << oneLine(live.error());
    live.value()->publish(0.0, 0, 0); // valid initial payload

    auto reader = obs::LiveReader::open(path);
    ASSERT_TRUE(reader.ok()) << oneLine(reader.error());

    constexpr std::uint64_t kIterations = 20'000;
    std::thread writer([&] {
        for (std::uint64_t i = 1; i <= kIterations; ++i) {
            // The registry getters run inside publish() on this
            // thread, so plain stores are race-free.
            stats.a = i;
            stats.b = 2 * i;
            stats.c = 3 * i;
            live.value()->publish(static_cast<double>(i), i, i);
        }
    });

    std::uint64_t reads = 0, busy = 0;
    std::uint64_t last_count = 0;
    while (true) {
        auto snap = reader.value().read();
        if (!snap.ok()) {
            // The only legal failure while the writer lives is
            // "busy" (kind=cancelled); CRC/parse failures mean a
            // torn read slipped through the seqlock.
            ASSERT_EQ(snap.error().kind, ErrorKind::cancelled)
                << oneLine(snap.error());
            ++busy;
            continue;
        }
        ++reads;
        const auto &s = snap.value();
        ASSERT_EQ(s.values.size(), 3u);
        const double base = s.values[0];
        EXPECT_DOUBLE_EQ(s.values[1], 2 * base);
        EXPECT_DOUBLE_EQ(s.values[2], 3 * base);
        EXPECT_DOUBLE_EQ(static_cast<double>(s.epoch), base);
        EXPECT_DOUBLE_EQ(s.t, base);
        // Heartbeat is monotone.
        EXPECT_GE(s.publish_count, last_count);
        last_count = s.publish_count;
        if (s.epoch == kIterations)
            break;
    }
    writer.join();
    EXPECT_GT(reads, 0u);

    std::remove(path.c_str());
}

TEST(LiveExport, CrcRejectsCorruptedRegion)
{
    const std::string path = tmpPath("crc");
    {
        TestStats stats;
        stats.a = 1;
        auto live = obs::LiveExport::create(path, stats.registry);
        ASSERT_TRUE(live.ok()) << oneLine(live.error());
        live.value()->publish(1.0, 1, 1);
    } // writer unmapped; region persists for post-mortem attach

    // Flip one byte of the last payload value without touching seq:
    // the seqlock reads as stable, so only the CRC can catch it.
    {
        std::fstream file(path, std::ios::in | std::ios::out |
                                    std::ios::binary);
        ASSERT_TRUE(file);
        file.seekg(0, std::ios::end);
        const auto size = file.tellg();
        file.seekp(size - std::streamoff(1));
        file.put('\x5a');
    }

    auto reader = obs::LiveReader::open(path);
    ASSERT_TRUE(reader.ok()) << oneLine(reader.error());
    auto snap = reader.value().read();
    ASSERT_FALSE(snap.ok());
    EXPECT_EQ(snap.error().kind, ErrorKind::parse);
    EXPECT_NE(snap.error().message.find("CRC"), std::string::npos);

    std::remove(path.c_str());
}

TEST(LiveExport, OpenErrorsAreTyped)
{
    auto missing = obs::LiveReader::open(tmpPath("does_not_exist"));
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().kind, ErrorKind::io);

    // Too short to hold a header.
    const std::string shorty = tmpPath("short");
    {
        std::ofstream out(shorty, std::ios::binary);
        out << "hello";
    }
    auto r1 = obs::LiveReader::open(shorty);
    ASSERT_FALSE(r1.ok());
    EXPECT_EQ(r1.error().kind, ErrorKind::parse);
    std::remove(shorty.c_str());

    // Header-sized garbage: bad magic.
    const std::string garbage = tmpPath("garbage");
    {
        std::ofstream out(garbage, std::ios::binary);
        out << std::string(256, 'x');
    }
    auto r2 = obs::LiveReader::open(garbage);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.error().kind, ErrorKind::parse);
    std::remove(garbage.c_str());

    // A truncated real region: header claims more than the file has.
    const std::string trunc = tmpPath("trunc");
    {
        TestStats stats;
        auto live = obs::LiveExport::create(trunc, stats.registry);
        ASSERT_TRUE(live.ok()) << oneLine(live.error());
        live.value()->publish(1.0, 1, 1);
    }
    std::string bytes;
    {
        std::ifstream in(trunc, std::ios::binary);
        std::stringstream buffer;
        buffer << in.rdbuf();
        bytes = buffer.str();
    }
    {
        std::ofstream out(trunc, std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, bytes.size() - 8);
    }
    auto r3 = obs::LiveReader::open(trunc);
    ASSERT_FALSE(r3.ok());
    EXPECT_EQ(r3.error().kind, ErrorKind::parse);
    std::remove(trunc.c_str());
}

namespace
{

BuildSpec
tinySpec()
{
    BuildSpec spec;
    applyCsaltCD(spec.params);
    spec.params.num_cores = 2;
    spec.params.cs_interval = 20'000;
    spec.params.seed = 5;
    spec.vm_workloads = {"canneal", "ccomp"};
    spec.workload_scale = 0.01;
    return spec;
}

} // namespace

/**
 * End-to-end System contract: an attached reader sees the running
 * registry exactly, and the destructor's final publish flips the
 * finished flag in the persisted region.
 */
TEST(LiveExport, SystemPublishesAndFinishes)
{
    const std::string path = tmpPath("system");
    {
        auto system = buildSystem(tinySpec());
        system->enableLiveExport(path);
        system->run(60'000);

        ASSERT_NE(system->liveExport(), nullptr);
        EXPECT_GT(system->liveExport()->publishCount(), 1u);

        auto reader = obs::LiveReader::open(path);
        ASSERT_TRUE(reader.ok()) << oneLine(reader.error());
        auto snap = reader.value().read();
        ASSERT_TRUE(snap.ok()) << oneLine(snap.error());
        EXPECT_FALSE(snap.value().finished);
        EXPECT_GT(snap.value().step, 0u);

        // Attach equality: every exported value is exactly the
        // registry's current value — the same numbers collectMetrics
        // and the metrics JSON derive from.
        const auto &names = reader.value().names();
        const auto &registry = system->statRegistry();
        ASSERT_EQ(names.size(), registry.size());
        for (std::size_t i = 0; i < names.size(); ++i)
            EXPECT_DOUBLE_EQ(snap.value().values[i],
                             registry.valueOf(names[i]))
                << names[i];
    }

    // Post-mortem attach after the System died.
    auto reader = obs::LiveReader::open(path);
    ASSERT_TRUE(reader.ok()) << oneLine(reader.error());
    auto snap = reader.value().read();
    ASSERT_TRUE(snap.ok()) << oneLine(snap.error());
    EXPECT_TRUE(snap.value().finished);

    std::remove(path.c_str());
}

/**
 * Field identity between the attach path and the post-hoc stream:
 * one sampler JSONL record and one live publish taken at the same
 * instant carry identical (t, step) and identical values per name.
 * System::run emits exactly this pair back-to-back at every sample
 * boundary.
 */
TEST(LiveExport, AttachSnapshotMatchesSampleStream)
{
    const std::string path = tmpPath("identity");
    auto system = buildSystem(tinySpec());
    system->run(60'000); // populate every counter

    std::ostringstream stream;
    obs::Sampler sampler(system->statRegistry());
    sampler.setSink(&stream);

    auto live =
        obs::LiveExport::create(path, system->statRegistry());
    ASSERT_TRUE(live.ok()) << oneLine(live.error());

    sampler.sample(4242.0, 999);
    live.value()->publish(4242.0, 999, 3);

    auto reader = obs::LiveReader::open(path);
    ASSERT_TRUE(reader.ok()) << oneLine(reader.error());
    auto snap = reader.value().read();
    ASSERT_TRUE(snap.ok()) << oneLine(snap.error());

    std::string err;
    auto doc = obs::parseJson(stream.str(), &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_DOUBLE_EQ(doc->numberOr("t", -1.0), snap.value().t);
    EXPECT_DOUBLE_EQ(doc->numberOr("step", -1.0),
                     static_cast<double>(snap.value().step));

    const obs::JsonValue *values = doc->find("values");
    ASSERT_NE(values, nullptr);
    const auto &names = reader.value().names();
    ASSERT_EQ(values->obj.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(values->obj[i].first, names[i]);
        EXPECT_DOUBLE_EQ(values->obj[i].second.num_v,
                         snap.value().values[i])
            << names[i];
    }

    std::remove(path.c_str());
}

/** The thread-local path override the JobRunner installs. */
TEST(LiveExport, ThreadPathOverrideOpensRegion)
{
    const std::string path = tmpPath("tls");
    obs::setThreadLiveExportPath(path);
    {
        auto system = buildSystem(tinySpec());
        system->run(30'000);
        ASSERT_NE(system->liveExport(), nullptr);
        EXPECT_EQ(system->liveExport()->path(), path);
    }
    obs::setThreadLiveExportPath({});

    auto reader = obs::LiveReader::open(path);
    ASSERT_TRUE(reader.ok()) << oneLine(reader.error());
    std::remove(path.c_str());
}
