/**
 * @file
 * Tests for the physical address-space layout and line-type
 * classification (paper §3.1 "Classifying Addresses as Data or TLB").
 */

#include <gtest/gtest.h>

#include "mem/memory_map.h"

using namespace csalt;

TEST(MemoryMap, RangesAreContiguous)
{
    const MemoryMap map(1 << 20, 1 << 16, 1 << 14);
    EXPECT_EQ(map.dataBase(), 0u);
    EXPECT_EQ(map.dataLimit(), 1u << 20);
    EXPECT_EQ(map.ptBase(), map.dataLimit());
    EXPECT_EQ(map.pomBase(), map.ptLimit());
    EXPECT_EQ(map.pomLimit(), map.pomBase() + (1 << 14));
}

TEST(MemoryMap, Classification)
{
    const MemoryMap map(1 << 20, 1 << 16, 1 << 14);
    EXPECT_EQ(map.classify(0), LineType::data);
    EXPECT_EQ(map.classify((1 << 20) - 1), LineType::data);
    EXPECT_EQ(map.classify(1 << 20), LineType::translation);
    EXPECT_EQ(map.classify(map.pomBase()), LineType::translation);
    EXPECT_EQ(map.classify(map.pomLimit() - 1),
              LineType::translation);
}

TEST(MemoryMap, RangePredicates)
{
    const MemoryMap map(1 << 20, 1 << 16, 1 << 14);
    EXPECT_TRUE(map.inData(42));
    EXPECT_FALSE(map.inData(map.ptBase()));
    EXPECT_TRUE(map.inPageTable(map.ptBase()));
    EXPECT_FALSE(map.inPageTable(map.pomBase()));
    EXPECT_TRUE(map.inPom(map.pomBase()));
    EXPECT_FALSE(map.inPom(map.ptBase()));
}

TEST(MemoryMap, Backing)
{
    const MemoryMap map(1 << 20, 1 << 16, 1 << 14);
    EXPECT_EQ(map.backingOf(0), Backing::offChip);
    EXPECT_EQ(map.backingOf(map.ptBase()), Backing::offChip);
    EXPECT_EQ(map.backingOf(map.pomBase()), Backing::stacked);
}

TEST(MemoryMap, RejectsUnalignedRanges)
{
    EXPECT_EXIT(MemoryMap(1000, 1 << 16, 1 << 14),
                ::testing::ExitedWithCode(1), "aligned");
}

TEST(MemoryMap, RejectsEmptyRanges)
{
    EXPECT_EXIT(MemoryMap(0, 1 << 16, 1 << 14),
                ::testing::ExitedWithCode(1), "nonzero");
}
