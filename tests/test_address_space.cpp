/**
 * @file
 * Tests for VmContext demand paging: translation determinism, huge
 * page policy, the guest/host two-dimensional structure, and the
 * host mapping of guest page-table nodes.
 */

#include <gtest/gtest.h>

#include "mem/phys_alloc.h"
#include "vm/address_space.h"

using namespace csalt;

namespace
{

struct Fixture
{
    Fixture()
        : data_frames(0, 1ull << 30, 11),
          pt_frames(1ull << 30, (1ull << 30) + (256ull << 20), 13)
    {
    }

    VmContext
    makeVm(bool virtualized, double huge_fraction = 0.0, Asid asid = 1)
    {
        VmContext::Params p;
        p.asid = asid;
        p.virtualized = virtualized;
        p.huge_fraction = huge_fraction;
        p.seed = 77;
        return VmContext(p, data_frames, pt_frames);
    }

    FrameAllocator data_frames;
    FrameAllocator pt_frames;
};

} // namespace

TEST(AddressSpace, TranslateIsStable)
{
    Fixture f;
    auto vm = f.makeVm(true);
    const Addr hpa1 = vm.translate(0x12345678);
    const Addr hpa2 = vm.translate(0x12345678);
    EXPECT_EQ(hpa1, hpa2);
}

TEST(AddressSpace, OffsetsPreservedWithinPage)
{
    Fixture f;
    auto vm = f.makeVm(true);
    const Addr base = vm.translate(0x40000000);
    EXPECT_EQ(vm.translate(0x40000123), base + 0x123);
}

TEST(AddressSpace, DistinctPagesDistinctFrames)
{
    Fixture f;
    auto vm = f.makeVm(true);
    const Addr a = vm.translate(0x1000);
    const Addr b = vm.translate(0x2000);
    EXPECT_NE(a >> kPageShift, b >> kPageShift);
}

TEST(AddressSpace, HugeFractionZeroMapsOnly4K)
{
    Fixture f;
    auto vm = f.makeVm(true, 0.0);
    for (Addr va = 0; va < 64 * kPageSize; va += kPageSize)
        vm.translate(va);
    EXPECT_EQ(vm.mapped2M(), 0u);
    EXPECT_EQ(vm.mapped4K(), 64u);
}

TEST(AddressSpace, HugeFractionOneMapsOnly2M)
{
    Fixture f;
    auto vm = f.makeVm(true, 1.0);
    vm.translate(0);
    vm.translate(kPageSize); // same 2MB region
    EXPECT_EQ(vm.mapped2M(), 1u);
    EXPECT_EQ(vm.mapped4K(), 0u);
    EXPECT_EQ(vm.mappingOf(0).ps, PageSize::size2M);
}

TEST(AddressSpace, HugeFractionIsApproximatelyHonoured)
{
    Fixture f;
    auto vm = f.makeVm(true, 0.3);
    for (std::uint64_t r = 0; r < 400; ++r)
        vm.translate(r * kHugePageSize);
    const double frac =
        static_cast<double>(vm.mapped2M()) /
        static_cast<double>(vm.mapped2M() + vm.mapped4K());
    EXPECT_NEAR(frac, 0.3, 0.08);
}

TEST(AddressSpace, GuestWalkPathEndsInGuestPhysical)
{
    Fixture f;
    auto vm = f.makeVm(true);
    vm.translate(0x5000);
    const auto leaf = vm.guestPt().leafOf(0x5000);
    ASSERT_TRUE(leaf.has_value());
    // The guest leaf points at a guest-physical page which the host
    // dimension maps to the real frame.
    const Addr hpa = vm.hostTranslate(leaf->next);
    EXPECT_EQ(hpa, vm.translate(0x5000) & ~(kPageSize - 1));
}

TEST(AddressSpace, GuestPtNodesAreHostMapped)
{
    Fixture f;
    auto vm = f.makeVm(true);
    vm.translate(0x5000);
    std::vector<PteRef> path;
    vm.guestPt().walkPath(0x5000, path);
    for (const auto &ref : path) {
        // Every guest PTE address is a gPA the host can translate.
        EXPECT_NO_FATAL_FAILURE(vm.hostTranslate(ref.pte_addr));
    }
}

TEST(AddressSpace, GuestPhysOfMatchesGuestLeaf)
{
    Fixture f;
    auto vm = f.makeVm(true);
    const Addr gpa = vm.guestPhysOf(0x777123);
    const auto leaf = vm.guestPt().leafOf(0x777123);
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(gpa, leaf->next + (0x777123 & (kPageSize - 1)));
}

TEST(AddressSpace, NativeModeMapsDirectly)
{
    Fixture f;
    auto vm = f.makeVm(false);
    const Addr hpa = vm.translate(0x9000);
    const auto leaf = vm.guestPt().leafOf(0x9000);
    ASSERT_TRUE(leaf.has_value());
    EXPECT_EQ(leaf->next, hpa & ~(kPageSize - 1));
    EXPECT_FALSE(vm.virtualized());
}

TEST(AddressSpace, NativeModeHasNoHostTable)
{
    Fixture f;
    auto vm = f.makeVm(false);
    EXPECT_DEATH(vm.hostPt(), "native");
}

TEST(AddressSpace, HostTranslateUnmappedPanics)
{
    Fixture f;
    auto vm = f.makeVm(true);
    EXPECT_DEATH(vm.hostTranslate(0xdeadbeef000), "unmapped");
}

TEST(AddressSpace, DifferentSeedsDifferentLayout)
{
    Fixture f;
    VmContext::Params p1;
    p1.asid = 1;
    p1.seed = 1;
    VmContext::Params p2;
    p2.asid = 2;
    p2.seed = 2;
    VmContext a(p1, f.data_frames, f.pt_frames);
    VmContext b(p2, f.data_frames, f.pt_frames);
    EXPECT_NE(a.translate(0x1000), b.translate(0x1000));
}
