/**
 * @file
 * Paper Figure 10: L2 data-cache MPKI of CSALT-D and CSALT-CD
 * relative to the POM-TLB baseline.
 *
 * Shape to reproduce: CSALT at or below 1.0 on the translation-heavy
 * workloads (paper: up to -30% on ccomp).
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main()
{
    const BenchEnv env = benchEnv();
    banner("Figure 10: relative L2 data-cache MPKI (vs POM-TLB)",
           "CSALT-D/CD <= 1.0 on translation-heavy pairs "
           "(paper: ccomp ~0.70)",
           env);

    TextTable table({"pair", "POM-TLB", "CSALT-D", "CSALT-CD"});
    std::vector<double> d_rel;
    std::vector<double> cd_rel;
    for (const auto &label : paperPairLabels()) {
        const double base =
            runCell(label, kPomTlb, env).l2_mpki_total;
        const double d = runCell(label, kCsaltD, env).l2_mpki_total;
        const double cd = runCell(label, kCsaltCD, env).l2_mpki_total;
        table.row()
            .add(label)
            .add(1.0, 3)
            .add(base > 0 ? d / base : 0.0, 3)
            .add(base > 0 ? cd / base : 0.0, 3);
        if (base > 0) {
            d_rel.push_back(d / base);
            cd_rel.push_back(cd / base);
        }
        std::fflush(stdout);
    }
    table.row()
        .add("geomean")
        .add(1.0, 3)
        .add(geomean(d_rel), 3)
        .add(geomean(cd_rel), 3);
    table.print();
    return 0;
}
