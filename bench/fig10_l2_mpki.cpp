/**
 * @file
 * Paper Figure 10: L2 data-cache MPKI of CSALT-D and CSALT-CD
 * relative to the POM-TLB baseline.
 *
 * Shape to reproduce: CSALT at or below 1.0 on the translation-heavy
 * workloads (paper: up to -30% on ccomp).
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 10: relative L2 data-cache MPKI (vs POM-TLB)",
           "CSALT-D/CD <= 1.0 on translation-heavy pairs "
           "(paper: ccomp ~0.70)",
           env);

    CellSet cells(env);
    struct Handles
    {
        std::size_t pom, d, cd;
    };
    std::vector<Handles> handles;
    for (const auto &label : paperPairLabels())
        handles.push_back({cells.add(label, kPomTlb),
                           cells.add(label, kCsaltD),
                           cells.add(label, kCsaltCD)});
    cells.run();

    TextTable table({"pair", "POM-TLB", "CSALT-D", "CSALT-CD"});
    std::vector<double> d_rel;
    std::vector<double> cd_rel;
    const auto labels = paperPairLabels();
    for (std::size_t l = 0; l < labels.size(); ++l) {
        const auto &label = labels[l];
        const double base = cells[handles[l].pom].l2_mpki_total;
        const double d = cells[handles[l].d].l2_mpki_total;
        const double cd = cells[handles[l].cd].l2_mpki_total;
        table.row()
            .add(label)
            .add(1.0, 3)
            .add(base > 0 ? d / base : 0.0, 3)
            .add(base > 0 ? cd / base : 0.0, 3);
        if (base > 0) {
            d_rel.push_back(d / base);
            cd_rel.push_back(cd / base);
        }
        std::fflush(stdout);
    }
    table.row()
        .add("geomean")
        .add(1.0, 3)
        .add(geomean(d_rel), 3)
        .add(geomean(cd_rel), 3);
    table.print();
    return 0;
}
