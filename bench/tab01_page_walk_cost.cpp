/**
 * @file
 * Paper Table 1: average page-walk cycles per L2 TLB miss, native vs
 * virtualized, on the conventional (L1-L2 TLB + walker) system.
 *
 * Shape to reproduce: virtualized >= native everywhere; workloads
 * with scattered page tables (connected component) blow up under the
 * 2-D walk (paper: 44 -> 1158 cycles) while dense/THP-friendly ones
 * (streamcluster) stay nearly equal (74 -> 76).
 */

#include <map>

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Table 1: average page walk cycles per L2 TLB miss",
           "virtualized >= native; ccomp blows up (paper 44 -> 1158);"
           " streamcluster nearly unchanged (74 -> 76)",
           env);

    TextTable table(
        {"benchmark", "native", "virtualized", "blowup", "paper"});
    static const std::map<std::string, const char *> paper = {
        {"canneal", "53 -> 61"},
        {"ccomp", "44 -> 1158"},
        {"graph500", "79 -> 80"},
        {"gups", "43 -> 70"},
        {"pagerank", "51 -> 61"},
        {"streamcluster", "74 -> 76"},
    };

    CellSet cells(env);
    struct Handles
    {
        std::size_t native, virt;
    };
    std::vector<Handles> handles;
    for (const auto &name : workloadNames())
        handles.push_back(
            {cells.add(name, kConventional, 2, /*virtualized=*/false),
             cells.add(name, kConventional, 2, /*virtualized=*/true)});
    cells.run();

    const auto names = workloadNames();
    for (std::size_t w = 0; w < names.size(); ++w) {
        const auto &name = names[w];
        const auto &native = cells[handles[w].native];
        const auto &virt = cells[handles[w].virt];
        table.row()
            .add(name)
            .add(native.avg_walk_cycles, 0)
            .add(virt.avg_walk_cycles, 0)
            .add(native.avg_walk_cycles > 0
                     ? virt.avg_walk_cycles / native.avg_walk_cycles
                     : 0.0,
                 2)
            .add(paper.count(name) ? paper.at(name) : "-");
    }
    table.print();
    return 0;
}
