/**
 * @file
 * Paper Table 1: average page-walk cycles per L2 TLB miss, native vs
 * virtualized, on the conventional (L1-L2 TLB + walker) system.
 *
 * Shape to reproduce: virtualized >= native everywhere; workloads
 * with scattered page tables (connected component) blow up under the
 * 2-D walk (paper: 44 -> 1158 cycles) while dense/THP-friendly ones
 * (streamcluster) stay nearly equal (74 -> 76).
 */

#include <map>

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main()
{
    const BenchEnv env = benchEnv();
    banner("Table 1: average page walk cycles per L2 TLB miss",
           "virtualized >= native; ccomp blows up (paper 44 -> 1158);"
           " streamcluster nearly unchanged (74 -> 76)",
           env);

    TextTable table(
        {"benchmark", "native", "virtualized", "blowup", "paper"});
    static const std::map<std::string, const char *> paper = {
        {"canneal", "53 -> 61"},
        {"ccomp", "44 -> 1158"},
        {"graph500", "79 -> 80"},
        {"gups", "43 -> 70"},
        {"pagerank", "51 -> 61"},
        {"streamcluster", "74 -> 76"},
    };

    for (const auto &name : workloadNames()) {
        const auto native =
            runCell(name, kConventional, env, 2, /*virtualized=*/false);
        const auto virt =
            runCell(name, kConventional, env, 2, /*virtualized=*/true);
        table.row()
            .add(name)
            .add(native.avg_walk_cycles, 0)
            .add(virt.avg_walk_cycles, 0)
            .add(native.avg_walk_cycles > 0
                     ? virt.avg_walk_cycles / native.avg_walk_cycles
                     : 0.0,
                 2)
            .add(paper.count(name) ? paper.at(name) : "-");
    }
    table.print();
    return 0;
}
