/**
 * @file
 * Paper Figure 8: fraction of page walks eliminated by the POM-TLB
 * (vs. the conventional system, where every L2 TLB miss walks).
 *
 * The paper reports ~0.97 on average, with every workload above 0.7.
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 8: fraction of page walks eliminated by POM-TLB",
           "large fractions everywhere (paper: avg 0.97)",
           env);

    CellSet cells(env);
    std::vector<std::size_t> handles;
    for (const auto &label : paperPairLabels())
        handles.push_back(cells.add(label, kPomTlb));
    cells.run();

    TextTable table({"pair", "L2TLB misses", "walks", "eliminated"});
    std::vector<double> fractions;
    const auto labels = paperPairLabels();
    for (std::size_t l = 0; l < labels.size(); ++l) {
        const auto &label = labels[l];
        const auto &m = cells[handles[l]];
        table.row()
            .add(label)
            .add(m.l2_tlb_misses)
            .add(m.walks)
            .add(m.walks_eliminated, 3);
        if (m.walks_eliminated > 0.0)
            fractions.push_back(m.walks_eliminated);
        std::fflush(stdout);
    }
    table.row().add("geomean").add("").add("").add(
        geomean(fractions), 3);
    table.print();
    return 0;
}
