/**
 * @file
 * Paper Figure 1: increase in L2 TLB misses due to context switches.
 *
 * For each workload pair we report the ratio of each VM's L2 TLB
 * MPKI under context switching to the same workload's standalone
 * MPKI, and the geometric mean of the two VMs' ratios. The paper
 * reports ratios between ~2 and ~11 with a geomean above 6.
 */

#include <map>

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 1: L2 TLB MPKI ratio (CS / no-CS)",
           "every ratio > 1 for TLB-reach-limited workloads; "
           "saturated giant-footprint workloads (gups) stay ~1; "
           "geomean well above 1 (paper: >6)",
           env);

    // Standalone (non-context-switched) runs plus the pair runs form
    // one grid.
    CellSet cells(env);
    std::map<std::string, std::size_t> standalone_handles;
    for (const auto &name : workloadNames())
        standalone_handles[name] = cells.add(name, kConventional, 1);
    std::vector<std::size_t> pair_handles;
    for (const auto &label : paperPairLabels())
        pair_handles.push_back(cells.add(label, kConventional, 2));
    cells.run();

    // Standalone (non-context-switched) MPKI per workload.
    std::map<std::string, double> standalone;
    for (const auto &[name, handle] : standalone_handles) {
        standalone[name] = cells[handle].vms[0].l2_tlb_mpki;
        std::fprintf(stderr, "  [standalone %s] MPKI %.3f\n",
                     name.c_str(), standalone[name]);
    }

    TextTable table({"pair", "vm1", "vm1_noCS", "vm1_CS", "vm2",
                     "vm2_noCS", "vm2_CS", "ratio"});
    std::vector<double> ratios;
    const auto labels = paperPairLabels();
    for (std::size_t l = 0; l < labels.size(); ++l) {
        const auto &label = labels[l];
        const PairSpec pair = resolvePair(label);
        const auto &m = cells[pair_handles[l]];

        const double r1 = standalone[pair.vm1] > 0
                              ? m.vms[0].l2_tlb_mpki /
                                    standalone[pair.vm1]
                              : 0.0;
        const double r2 = standalone[pair.vm2] > 0
                              ? m.vms[1].l2_tlb_mpki /
                                    standalone[pair.vm2]
                              : 0.0;
        const double ratio = geomean({r1, r2});
        ratios.push_back(ratio);

        table.row()
            .add(label)
            .add(pair.vm1)
            .add(standalone[pair.vm1], 2)
            .add(m.vms[0].l2_tlb_mpki, 2)
            .add(pair.vm2)
            .add(standalone[pair.vm2], 2)
            .add(m.vms[1].l2_tlb_mpki, 2)
            .add(ratio, 2);
    }
    table.row()
        .add("geomean")
        .add("")
        .add("")
        .add("")
        .add("")
        .add("")
        .add("")
        .add(geomean(ratios), 2);
    table.print();
    return 0;
}
