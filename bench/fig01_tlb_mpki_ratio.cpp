/**
 * @file
 * Paper Figure 1: increase in L2 TLB misses due to context switches.
 *
 * For each workload pair we report the ratio of each VM's L2 TLB
 * MPKI under context switching to the same workload's standalone
 * MPKI, and the geometric mean of the two VMs' ratios. The paper
 * reports ratios between ~2 and ~11 with a geomean above 6.
 */

#include <map>

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main()
{
    const BenchEnv env = benchEnv();
    banner("Figure 1: L2 TLB MPKI ratio (CS / no-CS)",
           "every ratio > 1 for TLB-reach-limited workloads; "
           "saturated giant-footprint workloads (gups) stay ~1; "
           "geomean well above 1 (paper: >6)",
           env);

    // Standalone (non-context-switched) MPKI per workload.
    std::map<std::string, double> standalone;
    for (const auto &name : workloadNames()) {
        const auto m = runCell(name, kConventional, env, 1);
        standalone[name] = m.vms[0].l2_tlb_mpki;
        std::fprintf(stderr, "  [standalone %s] MPKI %.3f\n",
                     name.c_str(), standalone[name]);
    }

    TextTable table({"pair", "vm1", "vm1_noCS", "vm1_CS", "vm2",
                     "vm2_noCS", "vm2_CS", "ratio"});
    std::vector<double> ratios;
    for (const auto &label : paperPairLabels()) {
        const PairSpec pair = resolvePair(label);
        const auto m = runCell(label, kConventional, env, 2);

        const double r1 = standalone[pair.vm1] > 0
                              ? m.vms[0].l2_tlb_mpki /
                                    standalone[pair.vm1]
                              : 0.0;
        const double r2 = standalone[pair.vm2] > 0
                              ? m.vms[1].l2_tlb_mpki /
                                    standalone[pair.vm2]
                              : 0.0;
        const double ratio = geomean({r1, r2});
        ratios.push_back(ratio);

        table.row()
            .add(label)
            .add(pair.vm1)
            .add(standalone[pair.vm1], 2)
            .add(m.vms[0].l2_tlb_mpki, 2)
            .add(pair.vm2)
            .add(standalone[pair.vm2], 2)
            .add(m.vms[1].l2_tlb_mpki, 2)
            .add(ratio, 2);
    }
    table.row()
        .add("geomean")
        .add("")
        .add("")
        .add("")
        .add("")
        .add("")
        .add("")
        .add(geomean(ratios), 2);
    table.print();
    return 0;
}
