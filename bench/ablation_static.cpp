/**
 * @file
 * Ablation (paper §5.1 footnote 6): "we also implemented static cache
 * partitioning schemes and found that no one static scheme performed
 * well across all the workloads." Sweeps static L3 splits against
 * the dynamic controller.
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

namespace
{

template <unsigned kL3Data>
void
staticSplit(SystemParams &p)
{
    p.l2_partition.policy = PartitionPolicy::staticHalf;
    p.l2_partition.static_data_ways = 2;
    p.l3_partition.policy = PartitionPolicy::staticHalf;
    p.l3_partition.static_data_ways = kL3Data;
}

} // namespace

int
main()
{
    const BenchEnv env = benchEnv();
    banner("Ablation: static partitions vs CSALT-CD (IPC vs POM-TLB)",
           "no single static split wins everywhere; the dynamic "
           "scheme matches or beats the best static per workload",
           env);

    const std::vector<std::string> pairs = {"ccomp", "gups",
                                            "pagerank"};

    TextTable table({"pair", "static d4", "static d8", "static d12",
                     "CSALT-CD"});
    for (const auto &label : pairs) {
        const double base = runCell(label, kPomTlb, env).ipc_geomean;
        const double s4 = runCell(label, kPomTlb, env, 2, true,
                                  staticSplit<4>)
                              .ipc_geomean;
        const double s8 = runCell(label, kPomTlb, env, 2, true,
                                  staticSplit<8>)
                              .ipc_geomean;
        const double s12 = runCell(label, kPomTlb, env, 2, true,
                                   staticSplit<12>)
                               .ipc_geomean;
        const double cscd = runCell(label, kCsaltCD, env).ipc_geomean;
        table.row()
            .add(label)
            .add(base > 0 ? s4 / base : 0.0, 3)
            .add(base > 0 ? s8 / base : 0.0, 3)
            .add(base > 0 ? s12 / base : 0.0, 3)
            .add(base > 0 ? cscd / base : 0.0, 3);
        std::fflush(stdout);
    }
    table.print();
    return 0;
}
