/**
 * @file
 * Ablation (paper §5.1 footnote 6): "we also implemented static cache
 * partitioning schemes and found that no one static scheme performed
 * well across all the workloads." Sweeps static L3 splits against
 * the dynamic controller.
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

namespace
{

template <unsigned kL3Data>
void
staticSplit(SystemParams &p)
{
    p.l2_partition.policy = PartitionPolicy::staticHalf;
    p.l2_partition.static_data_ways = 2;
    p.l3_partition.policy = PartitionPolicy::staticHalf;
    p.l3_partition.static_data_ways = kL3Data;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Ablation: static partitions vs CSALT-CD (IPC vs POM-TLB)",
           "no single static split wins everywhere; the dynamic "
           "scheme matches or beats the best static per workload",
           env);

    const std::vector<std::string> pairs = {"ccomp", "gups",
                                            "pagerank"};

    CellSet cells(env);
    struct Handles
    {
        std::size_t base, s4, s8, s12, cscd;
    };
    std::vector<Handles> handles;
    for (const auto &label : pairs)
        handles.push_back(
            {cells.add(label, kPomTlb),
             cells.add(label, kPomTlb, 2, true, staticSplit<4>, "d4"),
             cells.add(label, kPomTlb, 2, true, staticSplit<8>, "d8"),
             cells.add(label, kPomTlb, 2, true, staticSplit<12>,
                       "d12"),
             cells.add(label, kCsaltCD)});
    cells.run();

    TextTable table({"pair", "static d4", "static d8", "static d12",
                     "CSALT-CD"});
    for (std::size_t l = 0; l < pairs.size(); ++l) {
        const auto &label = pairs[l];
        const double base = cells[handles[l].base].ipc_geomean;
        const double s4 = cells[handles[l].s4].ipc_geomean;
        const double s8 = cells[handles[l].s8].ipc_geomean;
        const double s12 = cells[handles[l].s12].ipc_geomean;
        const double cscd = cells[handles[l].cscd].ipc_geomean;
        table.row()
            .add(label)
            .add(base > 0 ? s4 / base : 0.0, 3)
            .add(base > 0 ? s8 / base : 0.0, 3)
            .add(base > 0 ? s12 / base : 0.0, 3)
            .add(base > 0 ? cscd / base : 0.0, 3);
        std::fflush(stdout);
    }
    table.print();
    return 0;
}
