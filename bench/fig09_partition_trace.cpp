/**
 * @file
 * Paper Figure 9: fraction of L2/L3 cache capacity allocated to TLB
 * entries over execution time, for connected component under
 * CSALT-CD.
 *
 * Shape to reproduce: the TLB fraction varies with the application's
 * phases (expansion vs compaction), and when the L2 allocates more to
 * TLB entries the L3's TLB allocation drops.
 */

#include <algorithm>

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    // Accepts --jobs for CLI uniformity, but this figure is a single
    // time-resolved run: there is no cell grid to parallelize.
    BenchEnv env = benchEnv(argc, argv);
    // The trace needs several phase alternations: lengthen the run.
    env.quota *= 3;
    banner("Figure 9: TLB way-fraction in L2/L3 over time (ccomp, "
           "CSALT-CD)",
           "phase-varying allocation; L2-TLB-heavy epochs coincide "
           "with lighter L3 TLB allocation",
           env);

    auto system = buildPairSystem("ccomp", kCsaltCD, env);
    system->run(env.warmup);
    system->mem().l2Controller(0).clearTrace();
    system->mem().l3Controller().clearTrace();
    system->run(env.quota);

    const auto &l2_trace =
        system->mem().l2Controller(0).partitionTrace();
    const auto &l3_trace = system->mem().l3Controller().partitionTrace();
    const unsigned l2_ways = system->params().l2.ways;
    const unsigned l3_ways = system->params().l3.ways;

    const auto l2_small = l2_trace.downsampled(32);
    const auto l3_small = l3_trace.downsampled(32);
    const std::size_t rows =
        std::min(l2_small.points().size(), l3_small.points().size());

    const double t_end =
        rows ? std::max(l2_small.points().back().time,
                        l3_small.points().back().time)
             : 1.0;
    TextTable table({"time", "L2 TLB frac", "L3 TLB frac"});
    for (std::size_t i = 0; i < rows; ++i) {
        const double l2_frac =
            1.0 - l2_small.points()[i].value / l2_ways;
        const double l3_frac =
            1.0 - l3_small.points()[i].value / l3_ways;
        table.row()
            .add(l2_small.points()[i].time / t_end, 2)
            .add(l2_frac, 2)
            .add(l3_frac, 2);
    }
    table.print();

    const double l2_mean = 1.0 - l2_trace.meanValue() / l2_ways;
    const double l3_mean = 1.0 - l3_trace.meanValue() / l3_ways;
    std::printf("\nmean TLB fraction: L2 %.2f  L3 %.2f  (epochs: L2 "
                "%zu, L3 %zu)\n",
                l2_mean, l3_mean, l2_trace.points().size(),
                l3_trace.points().size());
    return 0;
}
