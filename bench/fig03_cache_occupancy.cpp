/**
 * @file
 * Paper Figure 3: fraction of L2/L3 data-cache capacity occupied by
 * translation entries under the POM-TLB baseline (no partitioning).
 *
 * The paper measures 40-80% occupancy (average ~60%) across the
 * single-benchmark workloads, peaking for connected component.
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 3: translation-entry occupancy of L2/L3 caches",
           "substantial fractions (paper: avg ~0.6, ccomp ~0.8); "
           "highest for the sparse-access workloads",
           env);

    const std::vector<std::string> workloads = {
        "canneal", "ccomp", "graph500", "gups", "pagerank"};

    CellSet cells(env);
    std::vector<std::size_t> handles;
    for (const auto &name : workloads)
        handles.push_back(cells.add(name, kPomTlb, 2));
    cells.run();

    TextTable table({"workload", "L2 D$", "L3 D$"});
    std::vector<double> l2s;
    std::vector<double> l3s;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const auto &name = workloads[w];
        const auto &m = cells[handles[w]];
        table.row()
            .add(name)
            .add(m.l2_translation_occupancy, 2)
            .add(m.l3_translation_occupancy, 2);
        l2s.push_back(m.l2_translation_occupancy);
        l3s.push_back(m.l3_translation_occupancy);
    }
    table.row()
        .add("geomean")
        .add(geomean(l2s), 2)
        .add(geomean(l3s), 2);
    table.print();
    return 0;
}
