/**
 * @file
 * Ablation (paper §3.4): CSALT's profilers are built for true LRU but
 * must keep working under the pseudo-LRU policies real caches use.
 * Runs CSALT-CD with true-LRU, NRU and binary-tree PLRU caches; the
 * paper (citing Kedzierski et al.) expects "only a minor performance
 * degradation" from the estimated stack positions.
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

namespace
{

void
useNru(SystemParams &p)
{
    p.l2.repl = ReplacementKind::nru;
    p.l3.repl = ReplacementKind::nru;
}

void
useBtPlru(SystemParams &p)
{
    p.l2.repl = ReplacementKind::btPlru;
    p.l3.repl = ReplacementKind::btPlru;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Ablation: CSALT-CD under pseudo-LRU replacement",
           "NRU / BT-PLRU within a few percent of true LRU (paper "
           "§3.4: minor degradation only)",
           env);

    const std::vector<std::string> pairs = {"ccomp", "pagerank",
                                            "graph500"};

    CellSet cells(env);
    struct Handles
    {
        std::size_t base, nru, plru;
    };
    std::vector<Handles> handles;
    for (const auto &label : pairs)
        handles.push_back(
            {cells.add(label, kCsaltCD),
             cells.add(label, kCsaltCD, 2, true, useNru, "nru"),
             cells.add(label, kCsaltCD, 2, true, useBtPlru,
                       "btplru")});
    cells.run();

    TextTable table({"pair", "true-LRU", "NRU", "BT-PLRU"});
    for (std::size_t l = 0; l < pairs.size(); ++l) {
        const auto &label = pairs[l];
        const double base = cells[handles[l].base].ipc_geomean;
        const double nru = cells[handles[l].nru].ipc_geomean;
        const double plru = cells[handles[l].plru].ipc_geomean;
        table.row()
            .add(label)
            .add(1.0, 3)
            .add(base > 0 ? nru / base : 0.0, 3)
            .add(base > 0 ? plru / base : 0.0, 3);
        std::fflush(stdout);
    }
    table.print();
    return 0;
}
