/**
 * @file
 * Ablation (paper §1): "emerging architectures introduce a 5-level
 * page table resulting in the page walk operation to only get longer
 * ... a five-level page table will only strengthen the motivation for
 * the proposed CSALT scheme."
 *
 * Measures walk cost and the POM-TLB/CSALT advantage over the
 * conventional system under 4- vs 5-level paging.
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

namespace
{

void
fiveLevel(SystemParams &p)
{
    p.page_table_levels = 5;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Ablation: 4-level vs 5-level (LA57) page tables",
           "5-level walks are costlier, widening the CSALT-CD gain "
           "over the conventional system",
           env);

    const std::vector<std::string> pairs = {"ccomp", "gups",
                                            "canneal"};

    CellSet cells(env);
    struct Handles
    {
        std::size_t conv4, conv5, cscd4, cscd5;
    };
    std::vector<Handles> handles;
    for (const auto &label : pairs)
        handles.push_back(
            {cells.add(label, kConventional),
             cells.add(label, kConventional, 2, true, fiveLevel,
                       "5L"),
             cells.add(label, kCsaltCD),
             cells.add(label, kCsaltCD, 2, true, fiveLevel, "5L")});
    cells.run();

    TextTable table({"pair", "walk cyc (4L)", "walk cyc (5L)",
                     "CSALT/conv (4L)", "CSALT/conv (5L)"});
    for (std::size_t l = 0; l < pairs.size(); ++l) {
        const auto &label = pairs[l];
        const auto &conv4 = cells[handles[l].conv4];
        const auto &conv5 = cells[handles[l].conv5];
        const auto &cscd4 = cells[handles[l].cscd4];
        const auto &cscd5 = cells[handles[l].cscd5];
        table.row()
            .add(label)
            .add(conv4.avg_walk_cycles, 0)
            .add(conv5.avg_walk_cycles, 0)
            .add(conv4.ipc_geomean > 0
                     ? cscd4.ipc_geomean / conv4.ipc_geomean
                     : 0.0,
                 3)
            .add(conv5.ipc_geomean > 0
                     ? cscd5.ipc_geomean / conv5.ipc_geomean
                     : 0.0,
                 3);
        std::fflush(stdout);
    }
    table.print();
    return 0;
}
