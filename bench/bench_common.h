/**
 * @file
 * Shared harness code for the per-figure reproduction benches.
 *
 * Every bench binary follows the same recipe: build a system per
 * (workload pair, scheme) cell, warm it up, clear statistics, run the
 * measured slice, and print the paper's rows with a
 * paper-expectation column. Run lengths honour:
 *   CSALT_QUOTA       measured instructions per core (default 1M)
 *   CSALT_WARMUP      warmup instructions per core (default 600K)
 *   CSALT_BENCH_FAST  =1 shrinks both 4x for smoke runs
 */

#ifndef CSALT_BENCH_BENCH_COMMON_H
#define CSALT_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/metrics.h"
#include "sim/system_builder.h"
#include "workloads/registry.h"

namespace csalt::bench
{

/** Run-length knobs from the environment. */
struct BenchEnv
{
    std::uint64_t quota = 1'000'000;
    std::uint64_t warmup = 600'000;
    double scale = 1.0;
};

inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    if (const char *s = std::getenv(name))
        return std::strtoull(s, nullptr, 10);
    return fallback;
}

inline BenchEnv
benchEnv()
{
    BenchEnv env;
    env.quota = envU64("CSALT_QUOTA", env.quota);
    env.warmup = envU64("CSALT_WARMUP", env.warmup);
    if (envU64("CSALT_BENCH_FAST", 0)) {
        env.quota /= 4;
        env.warmup /= 4;
    }
    return env;
}

/** Scheme selector used across benches. */
struct Scheme
{
    const char *name;
    void (*apply)(SystemParams &);
};

/**
 * Build the two-VM (or n-VM) system for a paper pair label.
 * @param contexts number of VMs; the pair's two workloads alternate
 */
inline std::unique_ptr<System>
buildPairSystem(const std::string &label, const Scheme &scheme,
                const BenchEnv &env, unsigned contexts = 2,
                bool virtualized = true,
                void (*tweak)(SystemParams &) = nullptr)
{
    BuildSpec spec;
    scheme.apply(spec.params);
    spec.params.virtualized = virtualized;
    if (tweak)
        tweak(spec.params);
    const PairSpec pair = resolvePair(label);
    for (unsigned i = 0; i < contexts; ++i)
        spec.vm_workloads.push_back(i % 2 ? pair.vm2 : pair.vm1);
    spec.workload_scale = env.scale;
    return buildSystem(spec);
}

/** Warm up, clear, run the measured slice, and collect metrics. */
inline RunMetrics
measure(System &system, const BenchEnv &env)
{
    if (env.warmup) {
        system.run(env.warmup);
        system.clearAllStats();
    }
    system.run(env.quota);
    return collectMetrics(system);
}

/** One-call cell: build + measure. */
inline RunMetrics
runCell(const std::string &label, const Scheme &scheme,
        const BenchEnv &env, unsigned contexts = 2,
        bool virtualized = true,
        void (*tweak)(SystemParams &) = nullptr)
{
    auto system = buildPairSystem(label, scheme, env, contexts,
                                  virtualized, tweak);
    return measure(*system, env);
}

inline const Scheme kConventional{"Conventional", applyConventional};
inline const Scheme kPomTlb{"POM-TLB", applyPomTlb};
inline const Scheme kCsaltD{"CSALT-D", applyCsaltD};
inline const Scheme kCsaltCD{"CSALT-CD", applyCsaltCD};
inline const Scheme kTsb{"TSB", applyTsb};
inline const Scheme kDip{"DIP", applyDipOverPom};

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *claim, const BenchEnv &env)
{
    std::printf("== %s ==\n", experiment);
    std::printf("paper expectation: %s\n", claim);
    std::printf("run: %llu warmup + %llu measured instructions/core, "
                "8 cores\n\n",
                static_cast<unsigned long long>(env.warmup),
                static_cast<unsigned long long>(env.quota));
}

} // namespace csalt::bench

#endif // CSALT_BENCH_BENCH_COMMON_H
