/**
 * @file
 * Shared harness code for the per-figure reproduction benches.
 *
 * Every bench binary follows the same recipe: build a system per
 * (workload pair, scheme) cell, warm it up, clear statistics, run the
 * measured slice, and print the paper's rows with a
 * paper-expectation column. Run lengths honour:
 *   CSALT_QUOTA       measured instructions per core (default 1M)
 *   CSALT_WARMUP      warmup instructions per core (default 600K)
 *   CSALT_BENCH_FAST  =1 shrinks both 4x for smoke runs
 *   CSALT_BENCH_JSON  path for the machine-readable results file
 *                     (default ./BENCH_results.json; see ResultsJson)
 *   CSALT_JOBS        worker threads for the cell grid (default 1);
 *                     every bench binary also takes --jobs N.
 *
 * Every bench binary also takes the shared runner flags (--retries,
 * --job-timeout, --stall-timeout, --resume, --fresh). A crash-safe
 * journal is kept beside the results file
 * ($CSALT_BENCH_JSON.journal.jsonl); kill the bench and rerun with
 * --resume to replay finished cells instead of re-simulating them.
 * Use a distinct CSALT_BENCH_JSON per bench binary when resuming —
 * the journal is keyed to the results path.
 *
 * Parallel execution never changes the numbers: cells are
 * shared-nothing (each builds its own System) and fully determined
 * by their parameters, so --jobs N output is identical to --jobs 1
 * (progress goes to stderr, tables to stdout). See docs/harness.md.
 */

#ifndef CSALT_BENCH_BENCH_COMMON_H
#define CSALT_BENCH_BENCH_COMMON_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/atomic_io.h"
#include "common/error.h"
#include "common/log.h"
#include "common/table.h"
#include "harness/job_runner.h"
#include "harness/results.h"
#include "obs/json.h"
#include "sim/metrics.h"
#include "sim/metrics_io.h"
#include "sim/scheme.h"
#include "sim/system_builder.h"
#include "workloads/registry.h"

namespace csalt::bench
{

/** Run-length and parallelism knobs from environment/argv. */
struct BenchEnv
{
    std::uint64_t quota = 1'000'000;
    std::uint64_t warmup = 600'000;
    double scale = 1.0;
    //! cell-grid execution knobs (workers, retries, timeouts, resume)
    harness::RunnerOptions runner;
    //! process start, so wall_clock_s covers the whole bench even
    //! though ResultsJson is typically constructed after run()
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
};

/** $CSALT_BENCH_JSON, or the in-tree default. */
inline std::string
benchJsonPath()
{
    const char *env_path = std::getenv("CSALT_BENCH_JSON");
    return env_path && *env_path ? env_path : "BENCH_results.json";
}

inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    if (const char *s = std::getenv(name))
        return std::strtoull(s, nullptr, 10);
    return fallback;
}

inline BenchEnv
benchEnv()
{
    BenchEnv env;
    env.quota = envU64("CSALT_QUOTA", env.quota);
    env.warmup = envU64("CSALT_WARMUP", env.warmup);
    if (envU64("CSALT_BENCH_FAST", 0)) {
        env.quota /= 4;
        env.warmup /= 4;
    }
    env.runner.jobs = harness::jobsFromEnv(1);
    return env;
}

/** benchEnv() plus every runner flag consumed from argv. */
inline BenchEnv
benchEnv(int &argc, char **argv)
{
    BenchEnv env = benchEnv();
    env.runner = harness::parseRunnerFlags(argc, argv);
    return env;
}

/**
 * Scheme selector used across benches — an alias of the registry row
 * (sim/scheme.h), so every bench's `.name` is the display spelling
 * ("CSALT-CD") that keys BENCH_results.json and the journal, and
 * `.apply` is the one registered params mapping.
 */
using Scheme = SchemeInfo;

/**
 * Build the two-VM (or n-VM) system for a paper pair label.
 * @param contexts number of VMs; the pair's two workloads alternate
 */
inline std::unique_ptr<System>
buildPairSystem(const std::string &label, const Scheme &scheme,
                const BenchEnv &env, unsigned contexts = 2,
                bool virtualized = true,
                void (*tweak)(SystemParams &) = nullptr)
{
    BuildSpec spec;
    scheme.apply(spec.params);
    spec.params.virtualized = virtualized;
    if (tweak)
        tweak(spec.params);
    const PairSpec pair = resolvePair(label);
    for (unsigned i = 0; i < contexts; ++i)
        spec.vm_workloads.push_back(i % 2 ? pair.vm2 : pair.vm1);
    spec.workload_scale = env.scale;
    return buildSystem(spec);
}

/** Warm up, clear, run the measured slice, and collect metrics. */
inline RunMetrics
measure(System &system, const BenchEnv &env)
{
    if (env.warmup) {
        system.run(env.warmup);
        system.clearAllStats();
    }
    system.run(env.quota);
    return collectMetrics(system);
}

/** One-call cell: build + measure. */
inline RunMetrics
runCell(const std::string &label, const Scheme &scheme,
        const BenchEnv &env, unsigned contexts = 2,
        bool virtualized = true,
        void (*tweak)(SystemParams &) = nullptr)
{
    auto system = buildPairSystem(label, scheme, env, contexts,
                                  virtualized, tweak);
    return measure(*system, env);
}

/**
 * A bench binary's whole (label × scheme × variant) grid, executed
 * through the harness job runner.
 *
 * Usage: add() every cell up front (it returns a handle), run()
 * once, then read metrics back via operator[]. With one worker the
 * cells execute inline in add() order — exactly the historical
 * sequential loops; with more workers they run concurrently and the
 * printed tables stay byte-identical because each cell is an
 * isolated System determined only by its parameters.
 */
class CellSet
{
  public:
    explicit CellSet(const BenchEnv &env)
        : env_(env), runner_(env.runner)
    {
        // The journal lives beside the results file; a bench that
        // dies mid-grid resumes with --resume instead of redoing
        // every finished cell. An unopenable journal only aborts
        // when the user explicitly asked to resume from it.
        auto journal = harness::Journal::open(
            benchJsonPath() + ".journal.jsonl",
            msgOf("bench:quota=", env.quota, ":warmup=", env.warmup),
            !env.runner.resume);
        if (!journal) {
            if (env.runner.resume)
                fatal(journal.error());
            warn("bench journal disabled: " +
                 oneLine(journal.error()));
        } else {
            journal_ = std::move(journal).take();
            runner_.attachJournal(journal_.get(),
                                  harness::metricsJournalCodec());
        }
    }

    /**
     * Queue one cell; @p variant disambiguates cells that differ
     * only through @p tweak (epoch length, CS interval, ...).
     * @return handle for operator[] after run()
     */
    std::size_t
    add(const std::string &label, const Scheme &scheme,
        unsigned contexts = 2, bool virtualized = true,
        void (*tweak)(SystemParams &) = nullptr,
        const std::string &variant = {})
    {
        std::string key = label;
        key += '/';
        key += scheme.name;
        if (contexts != 2)
            key += "/c" + std::to_string(contexts);
        if (!virtualized)
            key += "/native";
        if (!variant.empty())
            key += '/' + variant;
        const BenchEnv env = env_;
        return runner_.add(std::move(key), [=] {
            return runCell(label, scheme, env, contexts, virtualized,
                           tweak);
        });
    }

    /**
     * Execute every queued cell. A bench table is meaningless with
     * holes (the normalisation columns need every scheme), so if any
     * cell fails the failure table is printed and the process exits
     * with the failed-cell count — the journal keeps the finished
     * cells for a --resume rerun.
     */
    void
    run()
    {
        const unsigned jobs = env_.runner.jobs;
        if (jobs > 1)
            std::fprintf(stderr,
                         "running %zu cells on %u worker threads\n",
                         runner_.size(), jobs);
        outcomes_ = runner_.run(jobs > 1 ? harness::stderrProgress()
                                         : harness::ProgressFn{});
        const std::size_t failed = harness::countFailures(outcomes_);
        if (failed) {
            harness::printFailureTable(outcomes_);
            std::exit(static_cast<int>(
                std::min<std::size_t>(failed, 125)));
        }
    }

    /** Metrics of the cell returned by add(). */
    const RunMetrics &
    operator[](std::size_t handle) const
    {
        return *outcomes_[handle].value;
    }

  private:
    BenchEnv env_;
    std::unique_ptr<harness::Journal> journal_;
    harness::JobRunner<RunMetrics> runner_;
    std::vector<harness::JobOutcome<RunMetrics>> outcomes_;
};

inline const Scheme &kConventional = schemeInfo(SchemeId::conventional);
inline const Scheme &kPomTlb = schemeInfo(SchemeId::pom);
inline const Scheme &kCsaltD = schemeInfo(SchemeId::csaltD);
inline const Scheme &kCsaltCD = schemeInfo(SchemeId::csaltCD);
inline const Scheme &kTsb = schemeInfo(SchemeId::tsb);
inline const Scheme &kDip = schemeInfo(SchemeId::dip);
inline const Scheme &kVictima = schemeInfo(SchemeId::victima);
inline const Scheme &kPcax = schemeInfo(SchemeId::pcax);

/**
 * Machine-readable bench results, written next to the human table.
 *
 * Collects one row per workload pair (value per scheme), a geomean
 * summary, and the host wall-clock of the whole run, then writes:
 *
 *   {"schema_version":2,"figure":"fig07","metric":"ipc_norm_pom",
 *    "quota":...,"warmup":...,
 *    "rows":[{"label":"...","values":{"CSALT-D":1.1}}],
 *    "geomean":{"CSALT-D":1.1},"wall_clock_s":12.3}
 *
 * to $CSALT_BENCH_JSON (default ./BENCH_results.json), so sweeps can
 * be diffed and regression-checked without scraping tables
 * (scripts/bench_smoke.sh validates this schema).
 */
class ResultsJson
{
  public:
    using Values = std::vector<std::pair<std::string, double>>;

    ResultsJson(std::string figure, std::string metric,
                const BenchEnv &env)
        : figure_(std::move(figure)), metric_(std::move(metric)),
          env_(env), start_(env.start)
    {
    }

    /** Record one table row: per-scheme values for @p label. */
    void
    addRow(const std::string &label, const Values &values)
    {
        rows_.emplace_back(label, values);
    }

    /** Record the per-scheme geomean summary row. */
    void setGeomean(const Values &values) { geomean_ = values; }

    /** Serialize to $CSALT_BENCH_JSON / ./BENCH_results.json. */
    void
    write() const
    {
        const std::string path = benchJsonPath();
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();

        std::ostringstream os;
        os.precision(10);
        // schema_version tracks sim/metrics_io.h's metrics schema:
        // the bench gate (tools/bench_report) refuses files from a
        // different schema generation.
        os << "{\"schema_version\":" << kMetricsSchemaVersion
           << ",\"figure\":\"" << obs::escapeJson(figure_)
           << "\",\"metric\":\"" << obs::escapeJson(metric_)
           << "\",\"quota\":" << env_.quota
           << ",\"warmup\":" << env_.warmup
           // Always 0 here — CellSet::run exits before any table (or
           // this file) is produced when cells fail. The field keeps
           // the schema aligned with the sweep/tune results files.
           << ",\"failed_jobs\":0,\"rows\":[";
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            os << (i ? "," : "") << "{\"label\":\""
               << obs::escapeJson(rows_[i].first) << "\",\"values\":";
            writeValues(os, rows_[i].second);
            os << "}";
        }
        os << "],\"geomean\":";
        writeValues(os, geomean_);
        os << ",\"wall_clock_s\":" << wall << "}";
        // tmp + rename: a bench killed mid-write never leaves a torn
        // results file for downstream diff scripts to choke on.
        const Status status =
            writeFileAtomic(path, os.str() + "\n");
        if (!status.ok()) {
            warn("cannot write bench results: " +
                 oneLine(status.error()));
            return;
        }
        // Goes to stderr: stdout is the deterministic results table,
        // byte-identical at any --jobs value, and the JSON path (often
        // a mktemp name) would break that contract.
        std::fprintf(stderr, "\nwrote %s\n", path.c_str());
    }

  private:
    static void
    writeValues(std::ostream &os, const Values &values)
    {
        os << "{";
        for (std::size_t i = 0; i < values.size(); ++i) {
            os << (i ? "," : "") << "\""
               << obs::escapeJson(values[i].first)
               << "\":" << values[i].second;
        }
        os << "}";
    }

    std::string figure_;
    std::string metric_;
    BenchEnv env_;
    std::chrono::steady_clock::time_point start_;
    std::vector<std::pair<std::string, Values>> rows_;
    Values geomean_;
};

/** Print the standard bench banner. */
inline void
banner(const char *experiment, const char *claim, const BenchEnv &env)
{
    std::printf("== %s ==\n", experiment);
    std::printf("paper expectation: %s\n", claim);
    std::printf("run: %llu warmup + %llu measured instructions/core, "
                "8 cores\n\n",
                static_cast<unsigned long long>(env.warmup),
                static_cast<unsigned long long>(env.quota));
}

} // namespace csalt::bench

#endif // CSALT_BENCH_BENCH_COMMON_H
