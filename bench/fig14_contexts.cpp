/**
 * @file
 * Paper Figure 14: sensitivity to the number of contexts per core
 * (1, 2, 4 VMs). CSALT-CD normalized to POM-TLB at the same context
 * count.
 *
 * Shape to reproduce: the partitioning gain grows with contention —
 * smallest with 1 context, larger at 2, largest at 4 (paper: +33%
 * average at 4 contexts).
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 14: CSALT-CD gain vs context count",
           "gain grows with the number of contexts (paper: 4-context "
           "avg +33% over POM-TLB)",
           env);

    const std::vector<unsigned> counts = {1, 2, 4};

    CellSet cells(env);
    struct Handles
    {
        std::size_t pom, cscd;
    };
    std::vector<std::vector<Handles>> handles;
    for (const auto &label : paperPairLabels()) {
        auto &row = handles.emplace_back();
        for (const unsigned contexts : counts)
            row.push_back({cells.add(label, kPomTlb, contexts),
                           cells.add(label, kCsaltCD, contexts)});
    }
    cells.run();

    TextTable table({"pair", "1 context", "2 contexts", "4 contexts"});
    std::vector<std::vector<double>> gains(counts.size());
    const auto labels = paperPairLabels();
    for (std::size_t l = 0; l < labels.size(); ++l) {
        auto &row = table.row();
        row.add(labels[l]);
        for (std::size_t i = 0; i < counts.size(); ++i) {
            const auto &pom = cells[handles[l][i].pom];
            const auto &cscd = cells[handles[l][i].cscd];
            const double gain =
                pom.ipc_geomean > 0
                    ? cscd.ipc_geomean / pom.ipc_geomean
                    : 0.0;
            row.add(gain, 3);
            gains[i].push_back(gain);
        }
        std::fflush(stdout);
    }
    auto &row = table.row();
    row.add("geomean");
    for (const auto &series : gains)
        row.add(geomean(series), 3);
    table.print();
    return 0;
}
