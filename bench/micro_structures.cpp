/**
 * @file
 * google-benchmark microbenchmarks of the core data structures: raw
 * throughput sanity for the cache access path, shadow-tag profiling,
 * marginal-utility computation, TLB lookups, POM-TLB probes, DRAM
 * channel accesses and page walks.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.h"
#include "cache/stack_dist.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/marginal_utility.h"
#include "mem/dram.h"
#include "mem/phys_alloc.h"
#include "tlb/pom_tlb.h"
#include "tlb/tlb.h"
#include "vm/page_walker.h"

using namespace csalt;

namespace
{

void
BM_CacheAccess(benchmark::State &state)
{
    CacheParams p;
    p.name = "bench";
    p.size_bytes = 256 << 10;
    p.ways = 4;
    Cache cache(p);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(
            rng.below(1 << 22) << kLineShift, AccessType::read,
            LineType::data));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_CacheAccessPartitioned(benchmark::State &state)
{
    CacheParams p;
    p.name = "bench";
    p.size_bytes = 256 << 10;
    p.ways = 4;
    Cache cache(p);
    cache.enablePartitioning(2);
    cache.enableProfiling();
    Rng rng(1);
    for (auto _ : state) {
        const LineType t =
            rng.chance(0.5) ? LineType::data : LineType::translation;
        benchmark::DoNotOptimize(cache.access(
            rng.below(1 << 22) << kLineShift, AccessType::read, t));
    }
}
BENCHMARK(BM_CacheAccessPartitioned);

void
BM_ShadowTagUpdate(benchmark::State &state)
{
    ShadowTagArray shadow(1024, 16, ReplacementKind::trueLru, 0);
    Rng rng(2);
    for (auto _ : state)
        shadow.access(rng.below(1024), rng.below(1 << 18));
}
BENCHMARK(BM_ShadowTagUpdate);

void
BM_MarginalUtilityArgmax(benchmark::State &state)
{
    StackDistProfiler d(16);
    StackDistProfiler t(16);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        if (rng.chance(0.9))
            d.recordHit(static_cast<unsigned>(rng.below(16)));
        else
            t.recordHit(static_cast<unsigned>(rng.below(16)));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(bestPartition(d, t, 16, 1));
}
BENCHMARK(BM_MarginalUtilityArgmax);

void
BM_TlbLookup(benchmark::State &state)
{
    Tlb tlb("bench", {1536, 12, 17});
    Rng rng(4);
    for (int i = 0; i < 1536; ++i) {
        TlbEntry e;
        e.asid = 1;
        e.vpn = i;
        e.frame = i << kPageShift;
        e.valid = true;
        tlb.insert(e);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.lookup(1, rng.below(3000), PageSize::size4K));
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_PomTlbProbe(benchmark::State &state)
{
    PomTlb pom(PomTlbParams{}, 0x40000000);
    Rng rng(5);
    for (Vpn v = 0; v < 100000; ++v)
        pom.insert(1, v << kPageShift, {v << kPageShift,
                                        PageSize::size4K});
    for (auto _ : state) {
        benchmark::DoNotOptimize(pom.probe(
            1, rng.below(200000) << kPageShift, PageSize::size4K));
    }
}
BENCHMARK(BM_PomTlbProbe);

void
BM_DramAccess(benchmark::State &state)
{
    DramChannel dram(defaultParams().ddr);
    Rng rng(6);
    Cycles now = 0;
    for (auto _ : state) {
        now += 50;
        benchmark::DoNotOptimize(
            dram.access(rng.below(1ull << 30), now));
    }
}
BENCHMARK(BM_DramAccess);

class NullMem : public TranslationMemIf
{
  public:
    Cycles
    translationAccess(unsigned, Addr, Cycles) override
    {
        return 30;
    }
};

void
BM_NestedPageWalk(benchmark::State &state)
{
    FrameAllocator data(0, 4ull << 30, 1);
    FrameAllocator pt(4ull << 30, (4ull << 30) + (512ull << 20), 2);
    VmContext::Params vp;
    vp.asid = 1;
    vp.virtualized = true;
    vp.seed = 7;
    VmContext vm(vp, data, pt);
    MmuCaches mmu(MmuCacheParams{});
    NullMem mem;
    PageWalker walker(0, mmu, mem);
    Rng rng(8);

    // Pre-map a working set.
    for (int i = 0; i < 4096; ++i)
        vm.translate(static_cast<Addr>(i) << kPageShift);

    for (auto _ : state) {
        const Addr gva = rng.below(4096) << kPageShift;
        benchmark::DoNotOptimize(walker.walk(vm, gva, 0));
    }
}
BENCHMARK(BM_NestedPageWalk);

} // namespace

BENCHMARK_MAIN();
