/**
 * @file
 * Paper Figure 7: performance (geomean IPC) of Conventional, POM-TLB,
 * CSALT-D and CSALT-CD, normalized to POM-TLB, on context-switched
 * virtualized workloads.
 *
 * Shape to reproduce: Conventional < POM-TLB < CSALT-D <= CSALT-CD
 * on the translation-heavy workloads; gups/graph500 gain little from
 * partitioning (paper: CSALT-CD +25% geomean over POM-TLB, +85% over
 * conventional; ccomp is the outlier at 2.2X).
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 7: performance normalized to POM-TLB",
           "conv < POM < CSALT-D <= CSALT-CD; largest CSALT gain on "
           "ccomp; little partitioning gain on gups",
           env);

    const std::vector<Scheme> schemes = {kConventional, kPomTlb,
                                         kCsaltD, kCsaltCD};

    CellSet cells(env);
    std::vector<std::vector<std::size_t>> handles;
    for (const auto &label : paperPairLabels()) {
        auto &row = handles.emplace_back();
        for (const auto &scheme : schemes)
            row.push_back(cells.add(label, scheme));
    }
    cells.run();

    TextTable table({"pair", "Conventional", "POM-TLB", "CSALT-D",
                     "CSALT-CD"});
    std::vector<std::vector<double>> norm(schemes.size());
    ResultsJson results("fig07", "ipc_norm_pom", env);

    const auto labels = paperPairLabels();
    for (std::size_t l = 0; l < labels.size(); ++l) {
        std::vector<double> ipc;
        for (const std::size_t handle : handles[l])
            ipc.push_back(cells[handle].ipc_geomean);
        const double base = ipc[1]; // POM-TLB
        auto &row = table.row();
        row.add(labels[l]);
        ResultsJson::Values values;
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const double v = base > 0 ? ipc[s] / base : 0.0;
            row.add(v, 3);
            norm[s].push_back(v);
            values.emplace_back(schemes[s].name, v);
        }
        results.addRow(labels[l], values);
        std::fflush(stdout);
    }
    auto &row = table.row();
    row.add("geomean");
    ResultsJson::Values summary;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        const double g = geomean(norm[s]);
        row.add(g, 3);
        summary.emplace_back(schemes[s].name, g);
    }
    results.setGeomean(summary);
    table.print();
    results.write();
    return 0;
}
