/**
 * @file
 * Paper Figure 16: sensitivity to the context-switch interval
 * (5 / 10 / 30 ms, time-scaled). CSALT-CD normalized to POM-TLB at
 * the same interval.
 *
 * Shape to reproduce: steady gains at every interval, slightly lower
 * at 30 ms (less switching means less of the contention CSALT
 * manages; paper: ~8% lower at 30 ms than at 10 ms).
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

namespace
{

void
interval5ms(SystemParams &p)
{
    p.cs_interval = 5 * kCyclesPerPaperMs;
}

void
interval30ms(SystemParams &p)
{
    p.cs_interval = 30 * kCyclesPerPaperMs;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 16: CSALT-CD gain vs context-switch interval",
           "steady improvement at 5/10/30 ms; slightly lower at 30 ms",
           env);

    struct Point
    {
        const char *name;
        void (*tweak)(SystemParams &);
    };
    const std::vector<Point> points = {
        {"5ms", interval5ms}, {"10ms", nullptr}, {"30ms", interval30ms}};

    CellSet cells(env);
    struct Handles
    {
        std::size_t pom, cscd;
    };
    std::vector<std::vector<Handles>> handles;
    for (const auto &label : paperPairLabels()) {
        auto &row = handles.emplace_back();
        for (const auto &point : points)
            row.push_back({cells.add(label, kPomTlb, 2, true,
                                     point.tweak, point.name),
                           cells.add(label, kCsaltCD, 2, true,
                                     point.tweak, point.name)});
    }
    cells.run();

    TextTable table({"pair", "5ms", "10ms", "30ms"});
    std::vector<std::vector<double>> gains(points.size());
    const auto labels = paperPairLabels();
    for (std::size_t l = 0; l < labels.size(); ++l) {
        auto &row = table.row();
        row.add(labels[l]);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto &pom = cells[handles[l][i].pom];
            const auto &cscd = cells[handles[l][i].cscd];
            const double gain =
                pom.ipc_geomean > 0
                    ? cscd.ipc_geomean / pom.ipc_geomean
                    : 0.0;
            row.add(gain, 3);
            gains[i].push_back(gain);
        }
        std::fflush(stdout);
    }
    auto &row = table.row();
    row.add("geomean");
    for (const auto &series : gains)
        row.add(geomean(series), 3);
    table.print();
    return 0;
}
