/**
 * @file
 * Paper Figure 12: CSALT-CD performance improvement in the *native*
 * (non-virtualized) context, still with context switching.
 *
 * Shape to reproduce: modest average gains (paper: +5% geomean) with
 * the largest improvement on connected component (paper: +30%).
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 12: CSALT-CD improvement over POM-TLB, native mode",
           "small average gain (paper: +5% geomean, ccomp +30%)",
           env);

    CellSet cells(env);
    struct Handles
    {
        std::size_t pom, cscd;
    };
    std::vector<Handles> handles;
    for (const auto &label : paperPairLabels())
        handles.push_back(
            {cells.add(label, kPomTlb, 2, /*virtualized=*/false),
             cells.add(label, kCsaltCD, 2, /*virtualized=*/false)});
    cells.run();

    TextTable table({"pair", "CSALT-CD / POM-TLB"});
    std::vector<double> gains;
    const auto labels = paperPairLabels();
    for (std::size_t l = 0; l < labels.size(); ++l) {
        const auto &label = labels[l];
        const auto &pom = cells[handles[l].pom];
        const auto &cscd = cells[handles[l].cscd];
        const double gain = pom.ipc_geomean > 0
                                ? cscd.ipc_geomean / pom.ipc_geomean
                                : 0.0;
        table.row().add(label).add(gain, 3);
        gains.push_back(gain);
        std::fflush(stdout);
    }
    table.row().add("geomean").add(geomean(gains), 3);
    table.print();
    return 0;
}
