/**
 * @file
 * Paper Figure 12: CSALT-CD performance improvement in the *native*
 * (non-virtualized) context, still with context switching.
 *
 * Shape to reproduce: modest average gains (paper: +5% geomean) with
 * the largest improvement on connected component (paper: +30%).
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main()
{
    const BenchEnv env = benchEnv();
    banner("Figure 12: CSALT-CD improvement over POM-TLB, native mode",
           "small average gain (paper: +5% geomean, ccomp +30%)",
           env);

    TextTable table({"pair", "CSALT-CD / POM-TLB"});
    std::vector<double> gains;
    for (const auto &label : paperPairLabels()) {
        const auto pom =
            runCell(label, kPomTlb, env, 2, /*virtualized=*/false);
        const auto cscd =
            runCell(label, kCsaltCD, env, 2, /*virtualized=*/false);
        const double gain = pom.ipc_geomean > 0
                                ? cscd.ipc_geomean / pom.ipc_geomean
                                : 0.0;
        table.row().add(label).add(gain, 3);
        gains.push_back(gain);
        std::fflush(stdout);
    }
    table.row().add("geomean").add(geomean(gains), 3);
    table.print();
    return 0;
}
