/**
 * @file
 * Paper Figure 15: sensitivity to the partitioning epoch length
 * (paper: 128K / 256K / 512K cache accesses; here scaled by the
 * global time-scale factor, preserving the 1:2:4 ratios).
 *
 * Shape to reproduce: performance normalized to the default (256K)
 * epoch stays near 1.0 — the default is at or near the best for most
 * workloads, with a few preferring shorter/longer epochs.
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

namespace
{

void
epoch128(SystemParams &p)
{
    p.l2_partition.epoch_accesses = scaledEpoch(128 * 1024);
    p.l3_partition.epoch_accesses = scaledEpoch(128 * 1024);
}

void
epoch512(SystemParams &p)
{
    p.l2_partition.epoch_accesses = scaledEpoch(512 * 1024);
    p.l3_partition.epoch_accesses = scaledEpoch(512 * 1024);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 15: CSALT-CD performance vs epoch length "
           "(normalized to the 256K default)",
           "close to 1.0 everywhere; the default epoch is at or "
           "near the best",
           env);

    CellSet cells(env);
    struct Handles
    {
        std::size_t base, e128, e512;
    };
    std::vector<Handles> handles;
    for (const auto &label : paperPairLabels())
        handles.push_back(
            {cells.add(label, kCsaltCD),
             cells.add(label, kCsaltCD, 2, true, epoch128, "128K"),
             cells.add(label, kCsaltCD, 2, true, epoch512, "512K")});
    cells.run();

    TextTable table({"pair", "128K", "256K", "512K"});
    std::vector<double> g128;
    std::vector<double> g512;
    const auto labels = paperPairLabels();
    for (std::size_t l = 0; l < labels.size(); ++l) {
        const auto &label = labels[l];
        const double base = cells[handles[l].base].ipc_geomean;
        const double e128 = cells[handles[l].e128].ipc_geomean;
        const double e512 = cells[handles[l].e512].ipc_geomean;
        table.row()
            .add(label)
            .add(base > 0 ? e128 / base : 0.0, 3)
            .add(1.0, 3)
            .add(base > 0 ? e512 / base : 0.0, 3);
        if (base > 0) {
            g128.push_back(e128 / base);
            g512.push_back(e512 / base);
        }
        std::fflush(stdout);
    }
    table.row()
        .add("geomean")
        .add(geomean(g128), 3)
        .add(1.0, 3)
        .add(geomean(g512), 3);
    table.print();
    return 0;
}
