/**
 * @file
 * Paper Figure 15: sensitivity to the partitioning epoch length
 * (paper: 128K / 256K / 512K cache accesses; here scaled by the
 * global time-scale factor, preserving the 1:2:4 ratios).
 *
 * Shape to reproduce: performance normalized to the default (256K)
 * epoch stays near 1.0 — the default is at or near the best for most
 * workloads, with a few preferring shorter/longer epochs.
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

namespace
{

void
epoch128(SystemParams &p)
{
    p.l2_partition.epoch_accesses = scaledEpoch(128 * 1024);
    p.l3_partition.epoch_accesses = scaledEpoch(128 * 1024);
}

void
epoch512(SystemParams &p)
{
    p.l2_partition.epoch_accesses = scaledEpoch(512 * 1024);
    p.l3_partition.epoch_accesses = scaledEpoch(512 * 1024);
}

} // namespace

int
main()
{
    const BenchEnv env = benchEnv();
    banner("Figure 15: CSALT-CD performance vs epoch length "
           "(normalized to the 256K default)",
           "close to 1.0 everywhere; the default epoch is at or "
           "near the best",
           env);

    TextTable table({"pair", "128K", "256K", "512K"});
    std::vector<double> g128;
    std::vector<double> g512;
    for (const auto &label : paperPairLabels()) {
        const double base = runCell(label, kCsaltCD, env).ipc_geomean;
        const double e128 =
            runCell(label, kCsaltCD, env, 2, true, epoch128)
                .ipc_geomean;
        const double e512 =
            runCell(label, kCsaltCD, env, 2, true, epoch512)
                .ipc_geomean;
        table.row()
            .add(label)
            .add(base > 0 ? e128 / base : 0.0, 3)
            .add(1.0, 3)
            .add(base > 0 ? e512 / base : 0.0, 3);
        if (base > 0) {
            g128.push_back(e128 / base);
            g512.push_back(e512 / base);
        }
        std::fflush(stdout);
    }
    table.row()
        .add("geomean")
        .add(geomean(g128), 3)
        .add(1.0, 3)
        .add(geomean(g512), 3);
    table.print();
    return 0;
}
