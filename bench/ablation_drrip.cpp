/**
 * @file
 * Ablation (paper §6, Cache Replacement): content-oblivious high
 * performance replacement — DRRIP (Jaleel et al.) — implemented over
 * the POM-TLB, against CSALT-CD. The paper's argument is that such
 * policies "are not designed to achieve the optimal performance when
 * different types of data coexist"; like DIP (Fig. 13), DRRIP should
 * help generic thrash but not substitute for TLB-aware partitioning.
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

namespace
{

void
useDrrip(SystemParams &p)
{
    p.l2.repl = ReplacementKind::rrip;
    p.l3.repl = ReplacementKind::rrip;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Ablation: DRRIP replacement vs CSALT-CD (vs POM-TLB)",
           "DRRIP behaves like DIP: content-oblivious gains that do "
           "not track the TLB-aware partitioning's",
           env);

    const std::vector<std::string> pairs = {"ccomp", "gups",
                                            "pagerank", "canneal"};

    CellSet cells(env);
    struct Handles
    {
        std::size_t base, drrip, cscd;
    };
    std::vector<Handles> handles;
    for (const auto &label : pairs)
        handles.push_back(
            {cells.add(label, kPomTlb),
             cells.add(label, kPomTlb, 2, true, useDrrip, "drrip"),
             cells.add(label, kCsaltCD)});
    cells.run();

    TextTable table({"pair", "DRRIP", "CSALT-CD"});
    for (std::size_t l = 0; l < pairs.size(); ++l) {
        const auto &label = pairs[l];
        const double base = cells[handles[l].base].ipc_geomean;
        const double drrip = cells[handles[l].drrip].ipc_geomean;
        const double cscd = cells[handles[l].cscd].ipc_geomean;
        table.row()
            .add(label)
            .add(base > 0 ? drrip / base : 0.0, 3)
            .add(base > 0 ? cscd / base : 0.0, 3);
        std::fflush(stdout);
    }
    table.print();
    return 0;
}
