/**
 * @file
 * Paper Figure 13: comparison with prior schemes — the software TSB
 * (UltraSPARC translation storage buffer) and DIP (dynamic insertion
 * policy implemented on top of the POM-TLB), all normalized to
 * POM-TLB.
 *
 * Shape to reproduce: CSALT-CD > DIP ~= POM-TLB > TSB (paper: TSB
 * underperforms everything; DIP tracks POM-TLB; CSALT-CD +30% over
 * DIP on average).
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main()
{
    const BenchEnv env = benchEnv();
    banner("Figure 13: TSB vs DIP vs CSALT-CD (normalized to POM-TLB)",
           "CSALT-CD > DIP ~= POM-TLB > TSB",
           env);

    const std::vector<Scheme> schemes = {kTsb, kDip, kCsaltCD};

    TextTable table({"pair", "TSB", "DIP", "CSALT-CD"});
    std::vector<std::vector<double>> norm(schemes.size());
    for (const auto &label : paperPairLabels()) {
        const double base = runCell(label, kPomTlb, env).ipc_geomean;
        auto &row = table.row();
        row.add(label);
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const double ipc =
                runCell(label, schemes[s], env).ipc_geomean;
            const double v = base > 0 ? ipc / base : 0.0;
            row.add(v, 3);
            norm[s].push_back(v);
        }
        std::fflush(stdout);
    }
    auto &row = table.row();
    row.add("geomean");
    for (const auto &series : norm)
        row.add(geomean(series), 3);
    table.print();
    return 0;
}
