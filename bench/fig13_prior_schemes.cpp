/**
 * @file
 * Paper Figure 13: comparison with prior schemes — the software TSB
 * (UltraSPARC translation storage buffer) and DIP (dynamic insertion
 * policy implemented on top of the POM-TLB), all normalized to
 * POM-TLB.
 *
 * Shape to reproduce: CSALT-CD > DIP ~= POM-TLB > TSB (paper: TSB
 * underperforms everything; DIP tracks POM-TLB; CSALT-CD +30% over
 * DIP on average).
 */

#include "bench_common.h"

using namespace csalt;
using namespace csalt::bench;

int
main(int argc, char **argv)
{
    const BenchEnv env = benchEnv(argc, argv);
    banner("Figure 13: TSB vs DIP vs CSALT-CD (normalized to POM-TLB)",
           "CSALT-CD > DIP ~= POM-TLB > TSB",
           env);

    const std::vector<Scheme> schemes = {kTsb, kDip, kCsaltCD};

    CellSet cells(env);
    std::vector<std::size_t> base_handles;
    std::vector<std::vector<std::size_t>> scheme_handles;
    for (const auto &label : paperPairLabels()) {
        base_handles.push_back(cells.add(label, kPomTlb));
        auto &row = scheme_handles.emplace_back();
        for (const auto &scheme : schemes)
            row.push_back(cells.add(label, scheme));
    }
    cells.run();

    TextTable table({"pair", "TSB", "DIP", "CSALT-CD"});
    std::vector<std::vector<double>> norm(schemes.size());
    const auto labels = paperPairLabels();
    for (std::size_t l = 0; l < labels.size(); ++l) {
        const double base = cells[base_handles[l]].ipc_geomean;
        auto &row = table.row();
        row.add(labels[l]);
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const double ipc =
                cells[scheme_handles[l][s]].ipc_geomean;
            const double v = base > 0 ? ipc / base : 0.0;
            row.add(v, 3);
            norm[s].push_back(v);
        }
        std::fflush(stdout);
    }
    auto &row = table.row();
    row.add("geomean");
    for (const auto &series : norm)
        row.add(geomean(series), 3);
    table.print();
    return 0;
}
