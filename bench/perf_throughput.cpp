/**
 * @file
 * Simulator throughput baseline (not a paper figure): how fast the
 * simulator itself runs the fig07 reference configs.
 *
 * For each reference scheme (POM-TLB baseline, CSALT-D, CSALT-CD,
 * DIP, Victima, PCAX) this builds the fig07 system for one workload
 * pair, warms it up, clears stats, and times the measured slice with
 * a pinned seed.
 * It reports
 *
 *   MAPS  simulated memory accesses per second, in millions
 *   MIPS  simulated instructions per second, in millions
 *
 * and writes them through the standard $CSALT_BENCH_JSON path so the
 * perf trajectory of the simulator is tracked release over release
 * (see docs/performance.md for the schema and how to read it).
 *
 * Cells always run sequentially regardless of CSALT_JOBS: concurrent
 * cells would contend for cores and corrupt each other's wall-clock
 * measurements. Simulated results stay deterministic; the timings are
 * host-dependent by nature.
 */

#include "bench_common.h"

#include <cstring>

using namespace csalt;
using namespace csalt::bench;

namespace
{

struct Timed
{
    RunMetrics metrics;
    double seconds = 0.0;
};

/** Build + warm up + time exactly the measured run() slice. */
Timed
timeCell(const std::string &label, const Scheme &scheme,
         const BenchEnv &env)
{
    auto system = buildPairSystem(label, scheme, env);
    if (env.warmup) {
        system->run(env.warmup);
        system->clearAllStats();
    }
    const auto t0 = std::chrono::steady_clock::now();
    system->run(env.quota);
    const auto t1 = std::chrono::steady_clock::now();
    Timed out;
    out.metrics = collectMetrics(*system);
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchEnv env = benchEnv(argc, argv);
    std::string pair = "ccomp"; // fig07 headline pair
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--pair") == 0 && i + 1 < argc)
            pair = argv[++i];
    }

    std::printf("== Simulator throughput (fig07 reference configs) "
                "==\n");
    std::printf("pair %s, %llu warmup + %llu measured "
                "instructions/core\n\n",
                pair.c_str(),
                static_cast<unsigned long long>(env.warmup),
                static_cast<unsigned long long>(env.quota));

    const std::vector<Scheme> schemes = {kPomTlb,  kCsaltD, kCsaltCD,
                                         kDip,     kVictima, kPcax};

    TextTable table(
        {"scheme", "MAPS", "MIPS", "accesses", "seconds"});
    ResultsJson results("perf_throughput", "maps", env);
    std::vector<double> maps_all;
    for (const Scheme &scheme : schemes) {
        const Timed cell = timeCell(pair, scheme, env);
        const double maps =
            cell.seconds > 0
                ? static_cast<double>(cell.metrics.total_memrefs) /
                      cell.seconds / 1e6
                : 0.0;
        const double mips =
            cell.seconds > 0
                ? static_cast<double>(
                      cell.metrics.total_instructions) /
                      cell.seconds / 1e6
                : 0.0;
        auto &row = table.row();
        row.add(scheme.name);
        row.add(maps, 2);
        row.add(mips, 2);
        row.add(static_cast<double>(cell.metrics.total_memrefs), 0);
        row.add(cell.seconds, 3);
        results.addRow(scheme.name,
                       {{"MAPS", maps},
                        {"MIPS", mips},
                        {"accesses",
                         static_cast<double>(
                             cell.metrics.total_memrefs)},
                        {"seconds", cell.seconds}});
        maps_all.push_back(maps);
        std::fflush(stdout);
    }
    results.setGeomean({{"MAPS", geomean(maps_all)}});
    table.print();
    results.write();
    return 0;
}
